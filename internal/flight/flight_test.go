package flight

import (
	"bytes"
	"sync"
	"testing"
)

// rec builds a minimal record for ring/dump tests.
func rec(node int, t int64, kind EventKind) Record {
	return Record{TimeNs: t, Node: int32(node), Init: NoNode, Peer: NoNode, Edge: NoNode, Kind: kind}
}

func TestNilRecorderIsInert(t *testing.T) {
	var rc *Recorder
	rc.Record(rec(0, 1, EvSend)) // must not panic
	if rc.Nodes() != 0 {
		t.Errorf("nil recorder has %d nodes, want 0", rc.Nodes())
	}
	d := rc.Snapshot()
	if len(d.Events) != 0 || d.Overwritten != 0 {
		t.Errorf("nil recorder snapshot not empty: %+v", d)
	}
	if d.Version != DumpVersion {
		t.Errorf("nil snapshot version %d, want %d", d.Version, DumpVersion)
	}
}

func TestRingWrapCountsOverwritten(t *testing.T) {
	const ringCap, writes = 8, 21
	rc := New(1, ringCap)
	for i := 0; i < writes; i++ {
		rc.Record(rec(0, int64(i), EvSend))
	}
	d := rc.Snapshot()
	if len(d.Events) != ringCap {
		t.Fatalf("snapshot holds %d events, want ring capacity %d", len(d.Events), ringCap)
	}
	if d.Overwritten != writes-ringCap {
		t.Errorf("overwritten = %d, want %d", d.Overwritten, writes-ringCap)
	}
	// The survivors are the newest ringCap records, oldest first.
	for i, e := range d.Events {
		if want := int64(writes - ringCap + i); e.TimeNs != want {
			t.Errorf("event %d has t=%d, want %d", i, e.TimeNs, want)
		}
	}
}

func TestRecordClampsNodeOutOfRange(t *testing.T) {
	rc := New(2, 4)
	rc.Record(rec(99, 1, EvSend))
	rc.Record(rec(-3, 2, EvSend))
	d := rc.Snapshot()
	if len(d.Events) != 2 {
		t.Fatalf("got %d events, want 2 (out-of-range nodes fold into ring 0)", len(d.Events))
	}
}

func TestSnapshotMergesInArrivalOrder(t *testing.T) {
	rc := New(3, 16)
	// Interleave writers across rings; gseq must restore the global order.
	order := []int{2, 0, 1, 1, 0, 2, 0}
	for i, n := range order {
		rc.Record(rec(n, int64(100+i), EvSend))
	}
	d := rc.Snapshot()
	if len(d.Events) != len(order) {
		t.Fatalf("got %d events, want %d", len(d.Events), len(order))
	}
	for i, e := range d.Events {
		if e.TimeNs != int64(100+i) {
			t.Errorf("merged event %d has t=%d, want %d (arrival order broken)", i, e.TimeNs, 100+i)
		}
		if int(e.Node) != order[i] {
			t.Errorf("merged event %d from node %d, want %d", i, e.Node, order[i])
		}
	}
}

// TestRecorderHammer drives concurrent writers at every ring plus a
// concurrent snapshot reader; under -race this is the recorder's
// thread-safety proof.
func TestRecorderHammer(t *testing.T) {
	const nodes, writers, perWriter = 4, 8, 500
	rc := New(nodes, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = rc.Snapshot()
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				rc.Record(rec((w+i)%nodes, int64(i), EvSend))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	d := rc.Snapshot()
	total := int64(len(d.Events)) + d.Overwritten
	if want := int64(writers * perWriter); total != want {
		t.Errorf("live %d + overwritten %d = %d records, want %d", len(d.Events), d.Overwritten, total, want)
	}
}

func fullDump() *Dump {
	rc := New(2, 8)
	rc.Record(Record{TimeNs: 10, Seq: 1, X: -2.5, Init: 0, Node: 0, Peer: 1, Edge: 0, Kind: EvInitiate})
	rc.Record(Record{TimeNs: 10, Seq: 1, X: -2.5, Init: 0, Node: 0, Peer: 1, Edge: 0, Kind: EvSend, Msg: MsgLock})
	rc.Record(Record{TimeNs: 20, Seq: 1, X: -2.5, Init: 0, Node: 1, Peer: 0, Edge: 0, Kind: EvRecv, Msg: MsgLock})
	rc.Record(Record{TimeNs: 25, Seq: 1, Init: 0, Node: 1, Peer: 0, Edge: NoNode, Kind: EvNetDrop, Msg: MsgPropose, Re: MsgLock, Flags: ReasonLoss})
	rc.Record(Record{TimeNs: 40, Seq: 1, Init: 0, Node: 0, Peer: NoNode, Edge: NoNode, Kind: EvAbort, Flags: ReasonTimeout})
	rc.Record(Record{TimeNs: 50, Init: NoNode, Node: 1, Peer: NoNode, Edge: NoNode, Kind: EvCrash})
	return rc.Snapshot()
}

func TestDumpRoundTripBothEncodings(t *testing.T) {
	d := fullDump()
	for _, enc := range []struct {
		name  string
		write func(*Dump, *bytes.Buffer) error
	}{
		{"json", func(d *Dump, b *bytes.Buffer) error { return d.WriteJSON(b) }},
		{"binary", func(d *Dump, b *bytes.Buffer) error { return d.WriteBinary(b) }},
	} {
		var buf bytes.Buffer
		if err := enc.write(d, &buf); err != nil {
			t.Fatalf("%s encode: %v", enc.name, err)
		}
		got, err := ReadDump(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s decode: %v", enc.name, err)
		}
		if got.Version != d.Version || got.Nodes != d.Nodes || got.RingCap != d.RingCap || got.Overwritten != d.Overwritten {
			t.Errorf("%s header round-trip mismatch: got %+v", enc.name, got)
		}
		if len(got.Events) != len(d.Events) {
			t.Fatalf("%s round-trip: %d events, want %d", enc.name, len(got.Events), len(d.Events))
		}
		for i := range d.Events {
			want := d.Events[i]
			want.gseq = 0 // gseq is not serialized
			if got.Events[i] != want {
				t.Errorf("%s round-trip event %d:\n got %+v\nwant %+v", enc.name, i, got.Events[i], want)
			}
		}
		// Re-encoding the decoded dump must reproduce the exact bytes: the
		// encodings are deterministic functions of the content.
		var buf2 bytes.Buffer
		if err := enc.write(got, &buf2); err != nil {
			t.Fatalf("%s re-encode: %v", enc.name, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Errorf("%s encoding is not byte-deterministic across decode∘encode", enc.name)
		}
	}
}

func TestDumpEncodeTwiceIdentical(t *testing.T) {
	d := fullDump()
	var a, b bytes.Buffer
	if err := d.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two JSON encodings of the same dump differ")
	}
	a.Reset()
	b.Reset()
	if err := d.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two binary encodings of the same dump differ")
	}
}

func TestReadDumpRejectsBadVersion(t *testing.T) {
	d := fullDump()
	d.Version = DumpVersion + 1
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDump(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("version mismatch not rejected")
	}
}

func TestReadDumpRejectsCorruptCount(t *testing.T) {
	var buf bytes.Buffer
	d := &Dump{Version: DumpVersion}
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Overwrite the record count with an absurd value.
	for i := 0; i < 8; i++ {
		raw[4+20+i] = 0xff
	}
	if _, err := ReadDump(bytes.NewReader(raw)); err == nil {
		t.Error("corrupt record count not rejected")
	}
}

func TestWriteFilePicksEncodingBySuffix(t *testing.T) {
	d := fullDump()
	dir := t.TempDir()
	jsonPath := dir + "/d.json"
	binPath := dir + "/d.scfr"
	if err := d.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile(binPath); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{jsonPath, binPath} {
		got, err := ReadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(got.Events) != len(d.Events) {
			t.Errorf("%s: %d events, want %d", p, len(got.Events), len(d.Events))
		}
	}
}
