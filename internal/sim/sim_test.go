package sim

import (
	"math"
	"sort"
	"testing"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/stats"
)

type countingHandler struct {
	perEdge []int64
	times   []float64
}

func (h *countingHandler) HandleTick(e graph.EdgeID, t float64) {
	h.perEdge[e]++
	h.times = append(h.times, t)
}

func newCounter(g *graph.Graph) *countingHandler {
	return &countingHandler{perEdge: make([]int64, g.NumEdges())}
}

func TestNewEngineValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewEngine(g, nil); err == nil {
		t.Error("nil handler not rejected")
	}
	edgeless := graph.NewBuilder(2).MustBuild()
	if _, err := NewEngine(edgeless, HandlerFunc(func(graph.EdgeID, float64) {})); err == nil {
		t.Error("edgeless graph not rejected")
	}
	if _, err := NewEngine(g, newCounter(g), WithRates([]float64{1})); err == nil {
		t.Error("rate length mismatch not rejected")
	}
	if _, err := NewEngine(g, newCounter(g), WithRates([]float64{1, -1})); err == nil {
		t.Error("negative rate not rejected")
	}
	if _, err := NewEngine(g, newCounter(g), WithScheduler(SchedulerKind(99))); err == nil {
		t.Error("unknown scheduler not rejected")
	}
}

func TestRunStopsAtMaxEvents(t *testing.T) {
	g := graph.Complete(4)
	h := newCounter(g)
	eng, err := NewEngine(g, h)
	if err != nil {
		t.Fatal(err)
	}
	_, events := eng.Run(MaxEvents(100))
	if events != 100 {
		t.Errorf("events = %d, want 100", events)
	}
	total := int64(0)
	for _, c := range h.perEdge {
		total += c
	}
	if total != 100 {
		t.Errorf("handler saw %d ticks", total)
	}
}

func TestRunStopsAtTime(t *testing.T) {
	g := graph.Complete(4)
	eng, err := NewEngine(g, newCounter(g))
	if err != nil {
		t.Fatal(err)
	}
	tEnd, _ := eng.Run(Until(5))
	if tEnd < 5 {
		t.Errorf("stopped at t=%v, want >= 5", tEnd)
	}
	if tEnd > 10 {
		t.Errorf("overshot wildly: t=%v", tEnd)
	}
}

func TestRunResumes(t *testing.T) {
	g := graph.Complete(4)
	eng, err := NewEngine(g, newCounter(g))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(MaxEvents(10))
	t1 := eng.Now()
	eng.Run(MaxEvents(20))
	if eng.Events() != 20 {
		t.Errorf("cumulative events = %d, want 20", eng.Events())
	}
	if eng.Now() <= t1 {
		t.Error("time did not advance on resume")
	}
}

func TestTimesAreIncreasing(t *testing.T) {
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		g := graph.Complete(5)
		h := newCounter(g)
		eng, err := NewEngine(g, h, WithScheduler(kind))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(MaxEvents(5000))
		if !sort.Float64sAreSorted(h.times) {
			t.Errorf("%v: tick times not sorted", kind)
		}
		for _, tm := range h.times {
			if tm <= 0 {
				t.Fatalf("%v: non-positive tick time %v", kind, tm)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		g := graph.Complete(5)
		run := func() []float64 {
			h := newCounter(g)
			eng, err := NewEngine(g, h, WithScheduler(kind), WithSeed(77))
			if err != nil {
				t.Fatal(err)
			}
			eng.Run(MaxEvents(1000))
			return h.times
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: runs diverged at event %d", kind, i)
			}
		}
	}
}

// Both schedulers must realise the same process: per-edge tick counts over
// a fixed horizon are Poisson(rate*T) for each edge.
func TestSchedulerStatisticalEquivalence(t *testing.T) {
	g := graph.Complete(6) // 15 edges
	const horizon = 2000.0
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		h := newCounter(g)
		eng, err := NewEngine(g, h, WithScheduler(kind), WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(Until(horizon))
		for e, c := range h.perEdge {
			// Poisson(2000): sd ~ 44.7; allow 5 sigma.
			if math.Abs(float64(c)-horizon) > 5*math.Sqrt(horizon) {
				t.Errorf("%v: edge %d ticked %d times, want ~%v", kind, e, c, horizon)
			}
		}
	}
}

// Inter-event gaps of the superposed process must be Exp(|E|).
func TestGlobalGapDistribution(t *testing.T) {
	g := graph.Complete(4) // 6 edges
	h := newCounter(g)
	eng, err := NewEngine(g, h, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(MaxEvents(200000))
	gaps := make([]float64, len(h.times)-1)
	prev := 0.0
	for i, tm := range h.times {
		if i > 0 {
			gaps[i-1] = tm - prev
		}
		prev = tm
	}
	mean := stats.Mean(gaps)
	want := 1.0 / 6.0
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("mean gap %v, want ~%v", mean, want)
	}
	// Memorylessness check: variance of Exp is mean^2.
	if v := stats.Variance(gaps); math.Abs(v-want*want)/(want*want) > 0.05 {
		t.Errorf("gap variance %v, want ~%v", v, want*want)
	}
}

func TestWeightedRates(t *testing.T) {
	// A path with two edges: rates 1 and 4 -> tick counts ~1:4.
	g := graph.Path(3)
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		h := newCounter(g)
		eng, err := NewEngine(g, h, WithScheduler(kind), WithRates([]float64{1, 4}), WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(MaxEvents(100000))
		ratio := float64(h.perEdge[1]) / float64(h.perEdge[0])
		if math.Abs(ratio-4) > 0.2 {
			t.Errorf("%v: rate ratio %v, want ~4", kind, ratio)
		}
	}
}

func TestObserverInvoked(t *testing.T) {
	g := graph.Complete(3)
	calls := int64(0)
	var lastT float64
	eng, err := NewEngine(g, newCounter(g), WithObserver(func(tm float64, ev int64) {
		calls++
		lastT = tm
		if ev != calls {
			t.Fatalf("observer event count %d, want %d", ev, calls)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(MaxEvents(50))
	if calls != 50 {
		t.Errorf("observer called %d times", calls)
	}
	if lastT != eng.Now() {
		t.Error("observer saw stale time")
	}
}

func TestWithRNGSharedStream(t *testing.T) {
	g := graph.Complete(3)
	r := rng.New(123)
	eng1, err := NewEngine(g, newCounter(g), WithRNG(r.Split()))
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := NewEngine(g, newCounter(g), WithRNG(r.Split()))
	if err != nil {
		t.Fatal(err)
	}
	eng1.Run(MaxEvents(100))
	eng2.Run(MaxEvents(100))
	if eng1.Now() == eng2.Now() {
		t.Error("split streams produced identical trajectories")
	}
}

func TestAnyOf(t *testing.T) {
	cond := AnyOf(Until(10), MaxEvents(5))
	if !cond(11, 0) || !cond(0, 5) {
		t.Error("AnyOf missed a satisfied condition")
	}
	if cond(5, 3) {
		t.Error("AnyOf fired early")
	}
}

func TestRunPanicsWithoutStop(t *testing.T) {
	g := graph.Complete(3)
	eng, err := NewEngine(g, newCounter(g))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Run(nil) did not panic")
		}
	}()
	eng.Run(nil)
}

func TestSchedulerKindString(t *testing.T) {
	if GlobalClock.String() == "" || PerEdgeClocks.String() == "" || SchedulerKind(9).String() == "" {
		t.Error("empty scheduler names")
	}
}

func TestGraphAccessor(t *testing.T) {
	g := graph.Complete(3)
	eng, err := NewEngine(g, newCounter(g))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Graph() != g {
		t.Error("Graph() returned wrong graph")
	}
}
