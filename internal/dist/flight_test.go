package dist

import (
	"context"
	"math"
	"testing"
	"time"

	"sparsecut/internal/flight"
	"sparsecut/internal/rng"
)

// TestFlightMsgKindsMatch pins the wire compatibility the flight package
// relies on: its message-kind byte values mirror MsgKind one-for-one
// (flight is dependency-free and cannot import dist to share the consts).
func TestFlightMsgKindsMatch(t *testing.T) {
	pairs := []struct {
		name string
		dist MsgKind
		fl   uint8
	}{
		{"lock", MsgLock, flight.MsgLock},
		{"propose", MsgPropose, flight.MsgPropose},
		{"nack", MsgNack, flight.MsgNack},
		{"commit", MsgCommit, flight.MsgCommit},
	}
	for _, p := range pairs {
		if uint8(p.dist) != p.fl {
			t.Errorf("%s: dist.MsgKind %d != flight value %d", p.name, p.dist, p.fl)
		}
	}
}

// TestMessageInitiator pins the causal-key derivation from Kind/Re lineage.
func TestMessageInitiator(t *testing.T) {
	cases := []struct {
		m    Message
		want int
	}{
		{Message{Kind: MsgLock, From: 3, To: 7}, 3},
		{Message{Kind: MsgCommit, From: 3, To: 7}, 3},
		{Message{Kind: MsgPropose, From: 7, To: 3}, 3},
		{Message{Kind: MsgNack, Re: MsgLock, From: 7, To: 3}, 3},
		{Message{Kind: MsgNack, Re: MsgPropose, From: 3, To: 7}, 3},
		// A NACK not answering a LOCK is treated as refusing a proposal
		// (every wire NACK answers one of the two).
		{Message{Kind: MsgNack, From: 1, To: 2}, 1},
		{Message{Kind: 99}, -1}, // unknown kind has no lineage
	}
	for _, c := range cases {
		if got := c.m.Initiator(); got != c.want {
			t.Errorf("%s re=%d %d->%d: initiator %d, want %d", c.m.Kind, c.m.Re, c.m.From, c.m.To, got, c.want)
		}
	}
}

// TestFlightInstrumentedRun is the flight plane's acceptance check: on a
// healthy run, stitching the capture must reconstruct exactly the
// cluster's own ledger — one committed span per committed exchange, one
// aborted span per abort — with the full LOCK→PROPOSE→COMMIT phase
// structure on every committed span, while preserving the sum invariant.
// Under -race this also proves the node goroutines and a concurrent
// snapshot reader do not race on the rings.
func TestFlightInstrumentedRun(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	rec := flight.New(g.NumNodes(), 1<<14)
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{
		TimeScale: 4 * time.Millisecond, Seed: 3, Flight: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
				_ = rec.Snapshot()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	runErr := cl.Run(context.Background(), 10)
	done <- struct{}{}
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if cl.Exchanges() == 0 {
		t.Fatal("no exchanges committed")
	}

	d := rec.Snapshot()
	if d.Overwritten != 0 {
		t.Fatalf("rings wrapped (%d overwritten); grow the test capacity", d.Overwritten)
	}
	set := flight.Stitch(d)

	var committed, aborted int
	for i := range set.Spans {
		sp := &set.Spans[i]
		switch sp.Outcome {
		case flight.OutcomeCommitted:
			committed++
			if sp.LockNs < 0 || sp.HoldNs < 0 || sp.ApplyNs < 0 || sp.EndNs < 0 {
				t.Errorf("committed span %d#%d missing a phase: lock=%d hold=%d apply=%d end=%d",
					sp.Init, sp.Seq, sp.LockNs, sp.HoldNs, sp.ApplyNs, sp.EndNs)
			}
			// LOCK + PROPOSE + COMMIT, plus a PROPOSE/COMMIT pair per
			// retransmission (a slow initiator makes the responder's lease
			// fire; the duplicate proposal is answered with a re-COMMIT).
			if sp.Hops != 3+2*sp.Resends {
				t.Errorf("committed span %d#%d has %d hops with %d resends, want %d",
					sp.Init, sp.Seq, sp.Hops, sp.Resends, 3+2*sp.Resends)
			}
			if sp.Latency() <= 0 {
				t.Errorf("committed span %d#%d has latency %d", sp.Init, sp.Seq, sp.Latency())
			}
			if sp.Resp == flight.NoNode || sp.Edge == flight.NoNode {
				t.Errorf("committed span %d#%d lacks responder/edge: %d/%d", sp.Init, sp.Seq, sp.Resp, sp.Edge)
			}
		case flight.OutcomeAborted:
			aborted++
			// A healthy transport still aborts via busy responders, and —
			// under scheduling jitter — the occasional lock timeout.
			if sp.Reason != "nack-busy" && sp.Reason != "timeout" {
				t.Errorf("abort span %d#%d reason %q, want nack-busy or timeout on a crash-free run", sp.Init, sp.Seq, sp.Reason)
			}
		default:
			t.Errorf("span %d#%d unresolved after a drained run", sp.Init, sp.Seq)
		}
	}
	if int64(committed) != cl.Exchanges() {
		t.Errorf("stitched %d committed spans, cluster counted %d", committed, cl.Exchanges())
	}
	if int64(aborted) != cl.Aborted() {
		t.Errorf("stitched %d aborted spans, cluster counted %d", aborted, cl.Aborted())
	}
	if drift := math.Abs(sum(cl.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g with the flight recorder attached", drift)
	}
}

// TestFlightLossyCrashRun drives the recorder through every fault path —
// transport loss, congestion-free delays, crashes, recoveries, timeouts,
// resends — and asserts the capture names them: net-drop records with the
// loss reason, crash/recover records outside any span, and a ledger that
// still matches the cluster's counters.
func TestFlightLossyCrashRun(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	delay, err := NewDelayTransport(NewChanTransport(8*g.NumNodes()), 2*time.Millisecond, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDropTransport(delay, 0.2, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(g.NumNodes(), 1<<15)
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{
		TimeScale: 8 * time.Millisecond, Seed: 5, Transport: tr,
		LockTimeout: 20 * time.Millisecond,
		Flight:      rec,
		Crashes: []CrashEvent{
			{Node: 2, At: 1, Recover: 3},
			{Node: 9, At: 2, Recover: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Loss and scheduling decide what a single leg exercises; keep adding
	// bounded legs until an exchange commits and a drop was captured.
	for leg := 0; leg < 10; leg++ {
		if err := cl.Run(context.Background(), 10); err != nil {
			t.Fatal(err)
		}
		if cl.Exchanges() > 0 && tr.Dropped() > 0 {
			break
		}
	}
	if cl.Exchanges() == 0 || tr.Dropped() == 0 {
		t.Fatalf("run exercised too little: %d exchanges, %d drops", cl.Exchanges(), tr.Dropped())
	}

	d := rec.Snapshot()
	var drops, crashes, recovers int64
	for _, e := range d.Events {
		switch e.Kind {
		case flight.EvNetDrop:
			if e.Flags == flight.ReasonLoss {
				drops++
			}
		case flight.EvCrash:
			crashes++
		case flight.EvRecover:
			recovers++
		}
	}
	if d.Overwritten == 0 && drops != tr.Dropped() {
		t.Errorf("captured %d loss drops, transport counted %d", drops, tr.Dropped())
	}
	if d.Overwritten == 0 && crashes != cl.Crashes() {
		t.Errorf("captured %d crash records, cluster counted %d", crashes, cl.Crashes())
	}
	if recovers == 0 {
		t.Error("no recover records captured despite scheduled recoveries")
	}

	set := flight.Stitch(d)
	if d.Overwritten == 0 {
		var committed int64
		for i := range set.Spans {
			if set.Spans[i].Outcome == flight.OutcomeCommitted {
				committed++
			}
		}
		if committed != cl.Exchanges() {
			t.Errorf("stitched %d committed spans, cluster counted %d", committed, cl.Exchanges())
		}
	}
	if drift := math.Abs(sum(cl.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g across a faulted instrumented run", drift)
	}
}

// TestDisabledFlightIsNilSafe runs the default, recorder-less path and
// asserts the flight plane stays dark — the same nil contract as the
// metrics registry.
func TestDisabledFlightIsNilSafe(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{
		TimeScale: 2 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if cl.Exchanges() == 0 {
		t.Error("no exchanges committed")
	}
	if cl.rec != nil {
		t.Error("flight recorder populated without ClusterConfig.Flight")
	}
}
