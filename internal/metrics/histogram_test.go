package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins every log2 bucket edge: powers of two
// open a new bucket, one-below stays in the previous one, and the extremes
// (0, negatives, MaxInt64) land where documented.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{math.MinInt64, 0}, // negatives clamp into bucket 0
		{-1, 0},
		{0, 0},
		{1, 1}, // [1,1]
		{2, 2}, // [2,3]
		{3, 2},
		{4, 3}, // [4,7]
		{7, 3},
		{8, 4},
		{(1 << 20) - 1, 20},
		{1 << 20, 21},
		{math.MaxInt64, 63}, // 2^63-1 has 63 bits
	}
	for _, tc := range cases {
		if got := bucketIndex(max(tc.v, 0)); got != tc.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
		var h Histogram
		h.Observe(tc.v)
		s := h.snapshot()
		if len(s.Buckets) != 1 {
			t.Fatalf("Observe(%d): %d non-empty buckets, want 1", tc.v, len(s.Buckets))
		}
		lo, hi := BucketBounds(tc.bucket)
		if b := s.Buckets[0]; b.Lo != lo || b.Hi != hi || b.Count != 1 {
			t.Errorf("Observe(%d): bucket [%d,%d] x%d, want [%d,%d] x1", tc.v, b.Lo, b.Hi, b.Count, lo, hi)
		}
	}
}

// TestHistogramBucketBoundsCoverage checks the 65 buckets tile the
// non-negative int64 range with no gaps or overlaps.
func TestHistogramBucketBoundsCoverage(t *testing.T) {
	prevHi := uint64(0)
	for i := 1; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi+1 {
			t.Errorf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Errorf("bucket %d inverted: [%d,%d]", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != math.MaxUint64 {
		t.Errorf("last bucket ends at %d, want MaxUint64", prevHi)
	}
}

func TestHistogramCountSum(t *testing.T) {
	var h Histogram
	vals := []int64{0, 1, 1, 3, 1024, -7}
	for _, v := range vals {
		h.Observe(v)
	}
	if got := h.Count(); got != int64(len(vals)) {
		t.Errorf("Count = %d, want %d", got, len(vals))
	}
	if got := h.Sum(); got != 0+1+1+3+1024+0 {
		t.Errorf("Sum = %d, want %d (negative clamped to 0)", got, 1029)
	}
}

// TestQuantileEmptyAndInvalid pins the degenerate inputs: an empty
// snapshot and a NaN q both yield NaN; q is clamped into [0,1].
func TestQuantileEmptyAndInvalid(t *testing.T) {
	var h Histogram
	if v := h.snapshot().Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("empty snapshot Quantile = %v, want NaN", v)
	}
	h.Observe(8)
	if v := h.snapshot().Quantile(math.NaN()); !math.IsNaN(v) {
		t.Errorf("Quantile(NaN) = %v, want NaN", v)
	}
	s := h.snapshot()
	lo, hi := s.Quantile(-3), s.Quantile(7)
	if lo < 8 || lo > 15 || hi < 8 || hi > 15 {
		t.Errorf("clamped quantiles %v/%v escape the only bucket [8,15]", lo, hi)
	}
}

// TestQuantileSingleValueBuckets checks exactness where the format allows
// it: bucket 0 ([0,0]) and bucket 1 ([1,1]) hold a single distinct value,
// so any quantile landing there is exact.
func TestQuantileSingleValueBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	s := h.snapshot()
	if v := s.Quantile(0.25); v != 0 {
		t.Errorf("p25 = %v, want exactly 0", v)
	}
	if v := s.Quantile(0.95); v != 1 {
		t.Errorf("p95 = %v, want exactly 1", v)
	}
}

// TestQuantileBucketError checks the documented error bound on a wide
// spread: the estimate must land inside the bucket that holds the true
// rank, i.e. within 2x of the true value.
func TestQuantileBucketError(t *testing.T) {
	var h Histogram
	// 100 observations, value i+1 (1..100): true p50 is ~50, p95 ~95.
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.snapshot()
	cases := []struct {
		q        float64
		trueVal  float64
		loBucket uint64 // bucket holding the true rank
		hiBucket uint64
	}{
		{0.50, 50, 32, 63},
		{0.95, 95, 64, 127},
		{0.99, 99, 64, 127},
		{1.00, 100, 64, 127},
	}
	for _, c := range cases {
		v := s.Quantile(c.q)
		if v < float64(c.loBucket) || v > float64(c.hiBucket) {
			t.Errorf("Quantile(%g) = %v, want inside the true value's bucket [%d,%d]",
				c.q, v, c.loBucket, c.hiBucket)
		}
		if v < c.trueVal/2 || v > c.trueVal*2 {
			t.Errorf("Quantile(%g) = %v violates the 2x bound around %g", c.q, v, c.trueVal)
		}
	}
	// Monotonicity across q.
	prev := math.Inf(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Errorf("Quantile not monotone: q=%g gives %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

// TestHistogramHammer races many observers; the final count and sum must
// be exact.
func TestHistogramHammer(t *testing.T) {
	var h Histogram
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < perG; i++ {
				h.Observe(i % 1000)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
	var wantSum int64
	for i := int64(0); i < perG; i++ {
		wantSum += i % 1000
	}
	wantSum *= goroutines
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %d, want %d", got, wantSum)
	}
}
