// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// The generator is xoshiro256++ seeded through splitmix64. It is not
// cryptographically secure; it is chosen for reproducibility (a simulation
// seeded with the same value produces the same event sequence on every
// platform), speed, and the ability to derive statistically independent
// child streams for parallel Monte-Carlo trials.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator.
//
// The zero value is not usable; construct with New. RNG is not safe for
// concurrent use: derive one stream per goroutine with Split.
type RNG struct {
	s [4]uint64

	// Cached second output of the polar method for NormFloat64.
	spare      float64
	spareValid bool
}

// splitmix64 advances a 64-bit state and returns the next output. It is the
// standard seed expander for the xoshiro family.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed. Distinct seeds
// yield (for all practical purposes) independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A state of all zeros is the one forbidden state of xoshiro256++;
	// splitmix64 cannot produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new generator whose stream is independent of the parent's
// future output. The parent is advanced, so successive Split calls return
// distinct streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-light.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo). Implemented
// manually so the package has no dependency on math/bits semantics changing
// (math/bits.Mul64 would also be fine; this keeps the arithmetic explicit).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// ExpFloat64 returns an exponentially distributed sample with the given
// rate (mean 1/rate), via inversion. It panics if rate <= 0.
func (r *RNG) ExpFloat64(rate float64) float64 {
	if rate <= 0 {
		panic("rng: ExpFloat64 called with rate <= 0")
	}
	// 1 - Float64() is in (0, 1], so Log never sees zero.
	return -math.Log(1-r.Float64()) / rate
}

// NormFloat64 returns a standard normal sample using the Marsaglia polar
// method. Two samples are generated per acceptance; the second is cached.
func (r *RNG) NormFloat64() float64 {
	if r.spareValid {
		r.spareValid = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare, r.spareValid = v*f, true
		return u * f
	}
}

// Poisson returns a Poisson-distributed sample with the given mean.
// It uses Knuth's product method for small means and a normal approximation
// with continuity correction for large means (mean > 64), which is accurate
// to well under the Monte-Carlo noise of any experiment in this repository.
// It panics if mean < 0.
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean < 0:
		panic("rng: Poisson called with negative mean")
	case mean == 0:
		return 0
	case mean <= 64:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		v := mean + math.Sqrt(mean)*r.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
// It panics if n < 0.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle called with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
