package leakcheck

import (
	"testing"
	"time"
)

// TestSettleDetectsLeak drives the core directly (not through a testing.TB,
// which would fail this very test): a goroutine parked on a channel must be
// reported with a stack dump, and must pass once unblocked.
func TestSettleDetectsLeak(t *testing.T) {
	base := Snapshot()
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-block
		close(done)
	}()

	n, stacks, ok := settle(base.n, 50*time.Millisecond)
	if ok {
		t.Fatal("parked goroutine not detected as a leak")
	}
	if n <= base.n {
		t.Fatalf("reported count %d not above baseline %d", n, base.n)
	}
	if len(stacks) == 0 {
		t.Fatal("no stack dump on failure")
	}

	close(block)
	<-done
	if _, _, ok := settle(base.n, settleWindow); !ok {
		t.Fatal("goroutine exit not observed within the settle window")
	}
}

func TestCheckPassesWhenQuiet(t *testing.T) {
	base := Snapshot()
	ch := make(chan struct{})
	go close(ch)
	<-ch
	base.Check(t)
}

func TestTrackRunsFromCleanup(t *testing.T) {
	Track(t)
	stop := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		<-stop
		close(exited)
	}()
	// The test's own later-registered cleanup runs before Track's check,
	// so the goroutine is gone by the time the assertion fires.
	t.Cleanup(func() {
		close(stop)
		<-exited
	})
	if base := Snapshot(); base.Goroutines() <= 0 {
		t.Fatalf("implausible goroutine count %d", base.Goroutines())
	}
}
