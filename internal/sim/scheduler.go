package sim

import (
	"sort"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// globalScheduler superposes all edge clocks into one Poisson stream at the
// total rate; each event picks an edge with probability proportional to its
// rate. Uniform rates use a constant-time fast path.
type globalScheduler struct {
	r         *rng.RNG
	totalRate float64
	now       float64
	uniform   bool
	numEdges  int
	cumRates  []float64 // prefix sums when not uniform
}

func newGlobalScheduler(rates []float64, r *rng.RNG) *globalScheduler {
	s := &globalScheduler{r: r, numEdges: len(rates), uniform: true}
	for _, rate := range rates {
		if rate != rates[0] {
			s.uniform = false
			break
		}
	}
	if s.uniform {
		s.totalRate = rates[0] * float64(len(rates))
		return s
	}
	s.cumRates = make([]float64, len(rates))
	acc := 0.0
	for i, rate := range rates {
		acc += rate
		s.cumRates[i] = acc
	}
	s.totalRate = acc
	return s
}

func (s *globalScheduler) next() (graph.EdgeID, float64) {
	s.now += s.r.ExpFloat64(s.totalRate)
	if s.uniform {
		return graph.EdgeID(s.r.Intn(s.numEdges)), s.now
	}
	target := s.r.Float64() * s.totalRate
	idx := sort.SearchFloat64s(s.cumRates, target)
	if idx >= len(s.cumRates) {
		idx = len(s.cumRates) - 1
	}
	return graph.EdgeID(idx), s.now
}

// heapScheduler keeps one exponential timer per edge in a binary min-heap —
// the paper's model verbatim. After an edge fires, its next tick is
// resampled, exploiting the memorylessness of the exponential distribution.
type heapScheduler struct {
	r     *rng.RNG
	rates []float64
	heap  []heapEntry
}

type heapEntry struct {
	at   float64
	edge graph.EdgeID
}

func newHeapScheduler(rates []float64, r *rng.RNG) *heapScheduler {
	s := &heapScheduler{r: r, rates: rates, heap: make([]heapEntry, 0, len(rates))}
	for e, rate := range rates {
		s.push(heapEntry{at: r.ExpFloat64(rate), edge: graph.EdgeID(e)})
	}
	return s
}

func (s *heapScheduler) next() (graph.EdgeID, float64) {
	top := s.heap[0]
	// Resample this edge's next tick and sift it down from the root.
	s.heap[0] = heapEntry{at: top.at + s.r.ExpFloat64(s.rates[top.edge]), edge: top.edge}
	s.siftDown(0)
	return top.edge, top.at
}

func (s *heapScheduler) push(e heapEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].at <= s.heap[i].at {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *heapScheduler) siftDown(i int) {
	n := len(s.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && s.heap[left].at < s.heap[smallest].at {
			smallest = left
		}
		if right < n && s.heap[right].at < s.heap[smallest].at {
			smallest = right
		}
		if smallest == i {
			return
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}
