package graph

// Composite sparse-cut constructions: the dumbbell (the paper's headline
// example), general two-subgraph joins, and planted two-community random
// graphs. Each returns the graph together with the intended Partition, so
// experiments never have to rediscover the planted cut.

import (
	"fmt"

	"sparsecut/internal/rng"
)

// Dumbbell returns two cliques K_{n1} and K_{n2} joined by `cutEdges`
// edges, along with the clique/clique partition. Nodes 0..n1-1 form the
// first clique (matching the paper's labelling, with the designated cut
// edge connecting node n1-1 to node n1 when cutEdges >= 1).
//
// Cut edges are spread over distinct endpoint pairs: the k-th cut edge
// joins node n1-1-k (mod n1) to node n1+k (mod n2), so up to
// min(n1,n2) distinct pairs are available. It returns an error if
// n1 < 1, n2 < 1, or cutEdges outside [1, min(n1, n2)].
func Dumbbell(n1, n2, cutEdges int) (*Graph, *Partition, error) {
	if n1 < 1 || n2 < 1 {
		return nil, nil, fmt.Errorf("graph: dumbbell sides must be >= 1, got %d, %d", n1, n2)
	}
	maxCut := n1
	if n2 < maxCut {
		maxCut = n2
	}
	if cutEdges < 1 || cutEdges > maxCut {
		return nil, nil, fmt.Errorf("graph: dumbbell cutEdges %d outside [1, %d]", cutEdges, maxCut)
	}
	b := NewBuilder(n1 + n2).SetName(fmt.Sprintf("dumbbell(n1=%d,n2=%d,cut=%d)", n1, n2, cutEdges))
	for u := 0; u < n1; u++ {
		for v := u + 1; v < n1; v++ {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	for u := n1; u < n1+n2; u++ {
		for v := u + 1; v < n1+n2; v++ {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	for k := 0; k < cutEdges; k++ {
		u := NodeID((n1 - 1 - k%n1 + n1) % n1)
		v := NodeID(n1 + k%n2)
		b.AddEdge(u, v)
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	part, err := PartitionByPrefix(g, n1)
	if err != nil {
		return nil, nil, err
	}
	return g, part, nil
}

// SymmetricDumbbell returns Dumbbell(n/2, n-n/2, cutEdges) — the paper's
// G' example when cutEdges = 1. It returns an error if n < 2.
func SymmetricDumbbell(n, cutEdges int) (*Graph, *Partition, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("graph: symmetric dumbbell needs n >= 2, got %d", n)
	}
	return Dumbbell(n/2, n-n/2, cutEdges)
}

// Join glues two graphs into one, connecting them with the provided pairs
// of (node-in-g1, node-in-g2) cut edges. Node IDs of g2 are shifted by
// g1.NumNodes() in the result. The returned partition separates the two
// original graphs. It returns an error on out-of-range endpoints or an
// empty cut.
func Join(g1, g2 *Graph, cut [][2]NodeID) (*Graph, *Partition, error) {
	if len(cut) == 0 {
		return nil, nil, fmt.Errorf("graph: join requires at least one cut edge")
	}
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	b := NewBuilder(n1 + n2).SetName(fmt.Sprintf("join(%s + %s)", g1.Name(), g2.Name()))
	for _, e := range g1.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for _, e := range g2.Edges() {
		b.AddEdge(e.U+NodeID(n1), e.V+NodeID(n1))
	}
	for _, c := range cut {
		u, v := c[0], c[1]
		if u < 0 || int(u) >= n1 {
			return nil, nil, fmt.Errorf("graph: join cut endpoint %d outside g1 [0,%d)", u, n1)
		}
		if v < 0 || int(v) >= n2 {
			return nil, nil, fmt.Errorf("graph: join cut endpoint %d outside g2 [0,%d)", v, n2)
		}
		b.AddEdge(u, v+NodeID(n1))
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	part, err := PartitionByPrefix(g, n1)
	if err != nil {
		return nil, nil, err
	}
	return g, part, nil
}

// PlantedPartition returns a two-community random graph: sides of size n1
// and n2, internal edges present with probability pIn, cross edges with
// probability pOut. The sample is retried until both sides are internally
// connected and the cut is non-empty; it returns an error after maxTries.
func PlantedPartition(r *rng.RNG, n1, n2 int, pIn, pOut float64, maxTries int) (*Graph, *Partition, error) {
	if n1 < 1 || n2 < 1 {
		return nil, nil, fmt.Errorf("graph: planted partition sides must be >= 1, got %d, %d", n1, n2)
	}
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		return nil, nil, fmt.Errorf("graph: planted partition probabilities (%v, %v) outside [0,1]", pIn, pOut)
	}
	n := n1 + n2
	for try := 0; try < maxTries; try++ {
		b := NewBuilder(n).SetName(fmt.Sprintf("planted(n1=%d,n2=%d,pin=%.3g,pout=%.3g)", n1, n2, pIn, pOut))
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				p := pOut
				if (u < n1) == (v < n1) {
					p = pIn
				}
				if r.Float64() < p {
					b.AddEdge(NodeID(u), NodeID(v))
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			return nil, nil, err
		}
		part, err := PartitionByPrefix(g, n1)
		if err != nil {
			return nil, nil, err
		}
		if part.CutSize() >= 1 && sidesInternallyConnected(g, part) {
			return g, part, nil
		}
	}
	return nil, nil, fmt.Errorf("graph: no valid planted partition sample in %d tries", maxTries)
}
