package sim

// Sharded PDES engine for million-node single runs (DESIGN.md §13).
//
// The paper's timing model puts an independent rate-1 Poisson clock on
// every edge. Poisson superposition makes that process decomposable: for
// any tiling of the node set, the edge-clock union splits into one
// independent Poisson stream per tile (rate = the tile's internal edge
// count, each firing a uniform internal edge) plus one boundary stream
// (rate = |boundary|, each firing a uniform boundary edge). ShardEngine
// advances the tile streams in parallel inside bounded time windows Δ and
// serialises only the boundary events — conservative PDES whose
// synchronisation points are exactly the boundary firings and window
// barriers, with no rollback. Because the decomposition is exact (not an
// approximation), the simulated process is equidistributed with the
// per-event oracle; the avgtime KS cross-checks pin this.
//
// Determinism: the tiling is a function of the graph alone, each tile
// owns a private RNG stream split from the root in tile order, tiles
// touch disjoint kernel state, and the global variance reduction combines
// per-tile moments in fixed tile order. Worker count only changes which
// goroutine advances which tile, so output is byte-identical for any
// Workers/GOMAXPROCS — the same contract the sweep worker pool gives
// across replicas, now inside one run.
//
// What windowing buys and costs: within a window a tile's internal
// events commute with other tiles' (disjoint state), so only the
// variance *observations* are quantised to barriers. Variance under
// vanilla averaging is monotone non-increasing, so the tracked
// last-exceedance statistic is a single downward level crossing — the
// engine brackets it between consecutive barriers and interpolates,
// bounding the error by Δ.

import (
	"math"
	"sync"
	"sync/atomic"

	"sparsecut/internal/graph"
	"sparsecut/internal/metrics"
	"sparsecut/internal/rng"
)

// ShardKernel is the state contract of the sharded engine: per-tile chunk
// ticks that may run concurrently for distinct tiles, single-threaded
// boundary exchanges, and a variance reduction that must be
// deterministic for any worker count. gossip.FlatState implements it for
// vanilla averaging.
type ShardKernel interface {
	// TickTile applies a chunk of internal exchanges to tile t. Calls for
	// distinct tiles may be concurrent; calls for one tile are ordered.
	TickTile(tile int, us, vs []int32)
	// Exchange applies one boundary exchange. Never concurrent with
	// TickTile.
	Exchange(u, v int32)
	// Variance returns the current global variance (barrier phase only).
	Variance() float64
}

// ShardConfig tunes a ShardEngine.
type ShardConfig struct {
	// Workers caps the tile-advancing goroutines; <= 1 runs inline.
	// Results are byte-identical for any value.
	Workers int
	// Window is the barrier spacing Δ in simulated time. Larger windows
	// amortise barrier cost; smaller windows tighten the tracked-statistic
	// resolution. <= 0 defaults to DefaultWindow.
	Window float64
	// Metrics receives engine telemetry when non-nil (nil = zero cost).
	Metrics *metrics.Registry
	// Observer, when non-nil, is called at every window barrier with the
	// barrier time and cumulative event count.
	Observer func(t float64, events int64)
}

// DefaultWindow is the barrier spacing used when ShardConfig.Window is
// unset: coarse enough to amortise barriers, fine enough that tracked
// times resolve well below the Tav scales the report measures.
const DefaultWindow = 0.5

// shardChunk is the per-tile event chunk size: one Poisson count is
// drawn per tile per segment and consumed through fixed 256-pair
// endpoint buffers — the same chunk geometry as the batched kernels.
const shardChunk = 256

// ShardEngine advances a tiled graph's Poisson edge-clock process.
type ShardEngine struct {
	til  *graph.Tiling
	kern ShardKernel

	tileRNG []*rng.RNG
	us, vs  [][]int32 // per-tile endpoint scratch, len shardChunk

	bRNG         *rng.RNG
	bRate        float64
	nextBoundary float64

	now        float64
	events     int64
	tileEvents []int64

	workers int
	window  float64
	observe func(t float64, events int64)

	pool *tilePool

	// Telemetry (all nil-safe).
	mTileEvents     *metrics.Counter
	mBoundaryEvents *metrics.Counter
	mWindows        *metrics.Counter
	mSegments       *metrics.Counter
	mStallTiles     *metrics.Gauge

	lastWindowEvents []int64 // per-tile counts at the previous barrier
}

// tilePool is a run-scoped worker pool: goroutines are spawned once per
// run and fed timing segments over a channel, so the steady-state hot
// path allocates nothing. Workers pull tile indices from a shared atomic
// counter — pure work stealing; the assignment schedule never affects the
// result because tiles are independent.
type tilePool struct {
	eng  *ShardEngine
	feed chan float64
	wg   sync.WaitGroup
	next atomic.Int64
	w    int
}

func newTilePool(e *ShardEngine, w int) *tilePool {
	p := &tilePool{eng: e, feed: make(chan float64), w: w}
	n := len(e.til.Tiles)
	for g := 0; g < w; g++ {
		go func() {
			for dt := range p.feed {
				for {
					i := int(p.next.Add(1)) - 1
					if i >= n {
						break
					}
					e.advanceTile(i, dt)
				}
				p.wg.Done()
			}
		}()
	}
	return p
}

// advance runs every tile over a dt-long segment across the pool.
func (p *tilePool) advance(dt float64) {
	p.next.Store(0)
	p.wg.Add(p.w)
	for g := 0; g < p.w; g++ {
		p.feed <- dt
	}
	p.wg.Wait()
}

func (p *tilePool) close() { close(p.feed) }

// NewShardEngine builds an engine over the tiling, driving kern. The RNG
// is consumed to derive one boundary stream plus one stream per tile, in
// fixed order — callers pass a fresh trial stream and must not reuse it.
func NewShardEngine(til *graph.Tiling, kern ShardKernel, r *rng.RNG, cfg ShardConfig) *ShardEngine {
	e := &ShardEngine{
		til:     til,
		kern:    kern,
		workers: cfg.Workers,
		window:  cfg.Window,
		observe: cfg.Observer,
	}
	if e.window <= 0 {
		e.window = DefaultWindow
	}
	e.bRNG = r.Split()
	e.tileRNG = make([]*rng.RNG, len(til.Tiles))
	e.us = make([][]int32, len(til.Tiles))
	e.vs = make([][]int32, len(til.Tiles))
	for i := range til.Tiles {
		e.tileRNG[i] = r.Split()
		e.us[i] = make([]int32, shardChunk)
		e.vs[i] = make([]int32, shardChunk)
	}
	e.tileEvents = make([]int64, len(til.Tiles))
	e.lastWindowEvents = make([]int64, len(til.Tiles))
	e.bRate = float64(len(til.Boundary))
	if len(til.Boundary) > 0 {
		e.nextBoundary = e.bRNG.ExpUnit() / e.bRate
	} else {
		e.nextBoundary = math.Inf(1)
	}
	if m := cfg.Metrics; m != nil {
		e.mTileEvents = m.Counter("sim.shard.events")
		e.mBoundaryEvents = m.Counter("sim.shard.boundary.events")
		e.mWindows = m.Counter("sim.shard.windows")
		e.mSegments = m.Counter("sim.shard.segments")
		e.mStallTiles = m.Gauge("sim.shard.stall.tiles")
	}
	return e
}

// Now returns the current simulated time.
func (e *ShardEngine) Now() float64 { return e.now }

// Events returns the total exchanges applied so far.
func (e *ShardEngine) Events() int64 { return e.events }

// advanceTile draws tile i's Poisson event count for a dt-long segment
// and applies it in fixed-size chunks. Zero-allocation: the endpoint
// buffers are preallocated per tile.
func (e *ShardEngine) advanceTile(i int, dt float64) {
	t := &e.til.Tiles[i]
	if t.Edges == 0 || dt <= 0 {
		return
	}
	r := e.tileRNG[i]
	k := r.Poisson(float64(t.Edges) * dt)
	e.tileEvents[i] += int64(k)
	us, vs := e.us[i], e.vs[i]
	for k > 0 {
		c := k
		if c > shardChunk {
			c = shardChunk
		}
		t.Fill(r, us[:c], vs[:c])
		e.kern.TickTile(i, us[:c], vs[:c])
		k -= c
	}
}

// advanceTiles advances every tile across [now, now+dt), in parallel
// when a pool is active. Per-tile streams and disjoint kernel state make
// the schedule invisible to the result.
func (e *ShardEngine) advanceTiles(dt float64) {
	if dt <= 0 {
		return
	}
	if e.pool != nil {
		e.pool.advance(dt)
		return
	}
	for i := range e.til.Tiles {
		e.advanceTile(i, dt)
	}
}

// run advances simulated time to maxT, invoking barrier after every
// serialisation point (window barriers and boundary events). barrier
// receives the barrier time and must report whether to keep running.
func (e *ShardEngine) run(maxT float64, barrier func(t float64) bool) {
	if w := min(e.workers, len(e.til.Tiles)); w > 1 {
		e.pool = newTilePool(e, w)
		defer func() {
			e.pool.close()
			e.pool = nil
		}()
	}
	for e.now < maxT {
		wEnd := e.now + e.window
		if wEnd > maxT {
			wEnd = maxT
		}
		// Serve boundary firings inside the window: each is a global
		// synchronisation point — tiles advance to it, the exchange
		// applies, and tracking observes.
		for e.nextBoundary <= wEnd {
			bt := e.nextBoundary
			e.advanceTiles(bt - e.now)
			e.now = bt
			be := e.til.Boundary[e.bRNG.Intn(len(e.til.Boundary))]
			e.kern.Exchange(int32(be.U), int32(be.V))
			e.events++
			e.mBoundaryEvents.Inc(0)
			e.mSegments.Inc(0)
			e.nextBoundary = bt + e.bRNG.ExpUnit()/e.bRate
			if !barrier(bt) {
				e.finishWindow()
				return
			}
		}
		e.advanceTiles(wEnd - e.now)
		e.now = wEnd
		e.mSegments.Inc(0)
		e.finishWindow()
		if !barrier(wEnd) {
			return
		}
	}
}

// finishWindow folds per-tile event counts into the total and emits
// window telemetry.
func (e *ShardEngine) finishWindow() {
	stalled := int64(0)
	for i, c := range e.tileEvents {
		delta := c - e.lastWindowEvents[i]
		if delta == 0 && e.til.Tiles[i].Edges > 0 {
			stalled++
		}
		e.mTileEvents.Add(i&(metrics.NumShards-1), delta)
		e.events += delta
		e.lastWindowEvents[i] = c
	}
	e.mWindows.Inc(0)
	e.mStallTiles.Set(float64(stalled))
	if e.observe != nil {
		e.observe(e.now, e.events)
	}
}

// RunUntil advances simulated time to maxT.
func (e *ShardEngine) RunUntil(maxT float64) {
	e.run(maxT, func(float64) bool { return true })
}

// RunTracked advances until the Tracked stop rule fires, resolving the
// last-exceedance time of the averaging-time estimator at barrier
// granularity. Variance under the monotone kernels this engine serves is
// non-increasing, so the ExceedLevel crossing is bracketed by two
// consecutive barrier observations and interpolated linearly — an error
// of at most one window.
func (e *ShardEngine) RunTracked(cfg Tracked) TrackedResult {
	var res TrackedResult
	prevT := e.now
	prevV := e.kern.Variance()
	if prevV > cfg.ExceedLevel {
		res.LastExceed = prevT
	}
	e.run(cfg.MaxTime, func(t float64) bool {
		v := e.kern.Variance()
		if v > cfg.ExceedLevel {
			res.LastExceed = t
		} else if prevV > cfg.ExceedLevel {
			// The crossing happened inside (prevT, t]: place it on the
			// chord between the bracketing observations.
			res.LastExceed = prevT + (t-prevT)*(prevV-cfg.ExceedLevel)/(prevV-v)
		}
		prevT, prevV = t, v
		return v >= cfg.StopLevel || t < res.LastExceed+cfg.Quiet
	})
	if v := e.kern.Variance(); e.now >= cfg.MaxTime && v >= cfg.StopLevel {
		res.Censored = true
	}
	return res
}
