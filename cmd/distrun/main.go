// Command distrun runs one gossip-averaging workload on the *decentralized*
// message-passing runtime and reports the outcome, optionally against the
// sequential simulator on the same graph, horizon and seed.
//
// Two runtimes drive the same protocol machine: the goroutine-per-node
// Cluster (default) and the sharded actor runtime (-runtime=shard), which
// multiplexes all nodes over -shards event loops with per-shard timer
// wheels and batched mailboxes — the configuration that reaches 10^6
// nodes on one box. The torusdumbbell graph family is its natural
// companion: the dumbbell bottleneck at constant degree, so the worst
// case materialises at millions of nodes.
//
// Usage:
//
//	distrun -graph dumbbell -n 16 -cut 1 -rule A        -until 40
//	distrun -graph dumbbell -n 16 -rule A -drop 0.05    -until 40 -compare
//	distrun -graph planted  -n 60 -rule vanilla -delay 2ms -until 20
//	distrun -graph sensor   -n 64 -cut 2 -rule A -tcp   -until 30
//	distrun -runtime shard -shards 8 -graph torusdumbbell -n 1000000 \
//	        -cut 8 -rule vanilla -drop 0.05 -until 0.5 -scale 4s -assert
//
// -assert verifies the run's invariants afterwards — exact sum
// conservation and the exchange ledger (proposed == applied + aborted,
// applied == committed) — and exits non-zero on any violation.
//
// -drop injects i.i.d. message loss, -delay random per-message latency, and
// -tcp carries every protocol message over loopback TCP sockets. -scale
// sets the wall-clock length of one simulated time unit: smaller runs
// faster but leaves less headroom over transport latency.
//
// -http serves the runtime's live telemetry while the cluster runs:
// exchange/abort/message counters, the exchange-latency histogram and the
// convergence-progress gauges under expvar at /debug/vars (key
// "sparsecut"), plus the standard net/http/pprof profiling endpoints —
//
//	distrun -graph dumbbell -n 64 -rule A -drop 0.1 -until 2000 -http :6060
//	curl -s localhost:6060/debug/vars | jq .sparsecut
//
// -metrics writes the same snapshot as JSON to a file when the run ends
// (either flag enables instrumentation; both default off, leaving the
// runtime uninstrumented).
//
// -flight attaches the causal flight recorder: every protocol transition,
// message hop, drop and timer fire lands in a bounded per-node ring
// buffer, dumped to the named file when the run ends (.json = JSON,
// anything else = compact binary) and served live at /debug/flightz while
// -http is on. Render dumps with cmd/tracez:
//
//	distrun -graph dumbbell -n 16 -rule A -until 10 -flight run.scfr
//	tracez -view timeline run.scfr
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"sparsecut"
)

func main() {
	var (
		graphKind = flag.String("graph", "dumbbell", "graph family: dumbbell | torusdumbbell | planted | sensor")
		n         = flag.Int("n", 16, "total number of nodes")
		cutEdges  = flag.Int("cut", 1, "cut edges (dumbbell) or doors (sensor)")
		ruleKind  = flag.String("rule", "A", "exchange rule: A | vanilla")
		epochK    = flag.Int64("epoch", 4, "swap period K in ticks of ec (rule A); too small under-mixes the sides between swaps")
		until     = flag.Float64("until", 40, "horizon in simulated time units")
		scale     = flag.Duration("scale", 4*time.Millisecond, "wall-clock length of one simulated time unit")
		drop      = flag.Float64("drop", 0, "message loss probability in [0,1)")
		delay     = flag.Duration("delay", 0, "max random per-message latency (0 = none)")
		useTCP    = flag.Bool("tcp", false, "carry messages over loopback TCP instead of in-memory channels")
		runtimeK  = flag.String("runtime", "goroutine", "runtime: goroutine (one per node) | shard (event loops + timer wheels)")
		shards    = flag.Int("shards", 0, "shard event loops for -runtime=shard (0 = GOMAXPROCS)")
		assert    = flag.Bool("assert", false, "verify sum conservation and the exchange ledger after the run; exit non-zero on violation")
		seed      = flag.Uint64("seed", 1, "random seed")
		compare   = flag.Bool("compare", false, "also run the sequential simulator on the same workload")
		httpAddr  = flag.String("http", "", "serve live expvar telemetry + pprof on this address (e.g. :6060) during the run")
		metrics   = flag.String("metrics", "", "write the final telemetry snapshot JSON to this file")
		flightOut = flag.String("flight", "", "record per-exchange flight events and write the dump to this file (.json = JSON, else binary; render with tracez)")
		flightCap = flag.Int("flight-cap", 0, "flight-recorder ring capacity per node (0 = default)")
	)
	flag.Parse()

	useShard := false
	switch *runtimeK {
	case "goroutine":
	case "shard":
		useShard = true
	default:
		fatal(fmt.Errorf("unknown runtime %q (want goroutine or shard)", *runtimeK))
	}

	g, part, err := buildGraph(*graphKind, *n, *cutEdges, *seed)
	if err != nil {
		fatal(err)
	}
	x0 := sparsecut.WorstCaseInit(part)
	rule, err := buildRule(*ruleKind, part, *epochK)
	if err != nil {
		fatal(err)
	}
	// The sharded runtime's transport mailboxes are per shard, not per
	// node; with no fault injection it uses its internal direct path.
	nShards := *shards
	if nShards <= 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	if nShards > g.NumNodes() {
		nShards = g.NumNodes()
	}
	addrs := g.NumNodes()
	if useShard {
		addrs = nShards
	}
	tr, desc, err := buildTransport(addrs, g.NumNodes(), useShard, *useTCP, *drop, *delay, *seed)
	if err != nil {
		fatal(err)
	}

	cfg := sparsecut.ClusterConfig{
		TimeScale: *scale,
		Seed:      *seed,
		Transport: tr,
	}
	var reg *sparsecut.MetricsRegistry
	if *httpAddr != "" || *metrics != "" {
		reg = sparsecut.NewMetricsRegistry()
		cfg.Metrics = reg
	}
	var rec *sparsecut.FlightRecorder
	if *flightOut != "" || *httpAddr != "" {
		rec = sparsecut.NewFlightRecorder(g.NumNodes(), *flightCap)
		cfg.Flight = rec
	}
	if *delay > 0 {
		// The lock timeout must exceed the worst-case message round trip
		// (three one-way hops) or the initiator refuses every proposal as
		// stale and nothing commits.
		cfg.LockTimeout = 4 * *delay
	}
	var cl distRuntime
	if useShard {
		cl, err = sparsecut.NewShardRuntime(g, x0, rule, sparsecut.ShardRuntimeConfig{
			ClusterConfig: cfg, Shards: nShards,
		})
	} else {
		cl, err = sparsecut.NewCluster(g, x0, rule, cfg)
	}
	if err != nil {
		fatal(err)
	}
	var0 := cl.Variance()
	sum0 := sumOf(x0)

	if *httpAddr != "" {
		expvar.Publish("sparsecut", expvar.Func(func() any { return reg.Snapshot() }))
		http.Handle("/debug/flightz", sparsecut.FlightHandler(rec))
		ln, err := newHTTPListener(*httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("telemetry:  http://%s/debug/vars (expvar) + /debug/flightz + /debug/pprof/\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "distrun: telemetry server:", err)
			}
		}()
	}

	fmt.Printf("graph:      %s\n", g)
	fmt.Printf("partition:  %s\n", part)
	fmt.Printf("rule:       %s\n", rule.Name())
	fmt.Printf("transport:  %s\n", desc)
	if useShard {
		fmt.Printf("running:    %d nodes on %d shard loops for t=%g (~%v wall)...\n",
			g.NumNodes(), nShards, *until, (time.Duration(*until * float64(*scale))).Round(time.Millisecond))
	} else {
		fmt.Printf("running:    %d node goroutines for t=%g (~%v wall)...\n",
			g.NumNodes(), *until, (time.Duration(*until * float64(*scale))).Round(time.Millisecond))
	}
	start := time.Now()
	if err := cl.Run(context.Background(), *until); err != nil {
		fatal(err)
	}
	fmt.Printf("done in     %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("exchanges:  %d committed, %d aborted\n", cl.Exchanges(), cl.Aborted())
	fmt.Printf("mean drift: %.6g\n", math.Abs(cl.Mean()))
	fmt.Printf("var ratio:  %.6g\n", cl.Variance()/var0)

	if *assert {
		failed := false
		report := func(name string, ok bool, detail string) {
			status := "ok"
			if !ok {
				status = "VIOLATED"
				failed = true
			}
			fmt.Printf("assert:     %-22s %-8s %s\n", name, status, detail)
		}
		drift := math.Abs(sumOf(cl.Values()) - sum0)
		report("sum conservation", drift < 1e-6, fmt.Sprintf("|Σx - Σx0| = %.3g", drift))
		report("ledger balanced", cl.Proposed() == cl.Applied()+cl.Aborted(),
			fmt.Sprintf("proposed %d = applied %d + aborted %d", cl.Proposed(), cl.Applied(), cl.Aborted()))
		report("no stale commits", cl.Applied() == cl.Exchanges(),
			fmt.Sprintf("applied %d = committed %d", cl.Applied(), cl.Exchanges()))
		if failed {
			fatal(fmt.Errorf("invariant violated (see assert lines above)"))
		}
	}

	if reg != nil {
		snap := reg.Snapshot()
		fmt.Printf("messages:   %d lock, %d propose, %d nack, %d commit; %d dropped, %d delayed\n",
			snap.Counters["dist.msg.sent.lock"], snap.Counters["dist.msg.sent.propose"],
			snap.Counters["dist.msg.sent.nack"], snap.Counters["dist.msg.sent.commit"],
			snap.Counters["dist.transport.dropped"], snap.Counters["dist.transport.delayed"])
		if lat, ok := snap.Histograms["dist.exchange.latency_ns"]; ok && lat.Count > 0 {
			fmt.Printf("latency:    %v mean over %d committed exchanges\n",
				(time.Duration(lat.Sum / lat.Count)).Round(time.Microsecond), lat.Count)
			fmt.Printf("            p50 ~%v  p95 ~%v  p99 ~%v (log2-bucket estimates)\n",
				quantileDur(lat, 0.50), quantileDur(lat, 0.95), quantileDur(lat, 0.99))
		}
		if *metrics != "" {
			f, err := os.Create(*metrics)
			if err != nil {
				fatal(err)
			}
			if err := snap.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics:    wrote snapshot to %s\n", *metrics)
		}
	}

	if *flightOut != "" {
		d := rec.Snapshot()
		if err := d.WriteFile(*flightOut); err != nil {
			fatal(err)
		}
		fmt.Printf("flight:     wrote %d events to %s (overwritten %d); render with: go run ./cmd/tracez %s\n",
			len(d.Events), *flightOut, d.Overwritten, *flightOut)
	}

	if *compare {
		alg, err := buildSimAlgorithm(*ruleKind, g, part, x0, *epochK)
		if err != nil {
			fatal(err)
		}
		res := sparsecut.Simulate(g, alg, *until, *seed)
		fmt.Printf("\nsimulator on the same workload (t=%g, seed %d):\n", *until, *seed)
		fmt.Printf("events:     %d\n", res.Events)
		fmt.Printf("var ratio:  %.6g\n", res.VarianceRatio)
	}
}

func buildGraph(kind string, n, cutEdges int, seed uint64) (*sparsecut.Graph, *sparsecut.Partition, error) {
	switch kind {
	case "dumbbell":
		return sparsecut.NewDumbbell(n/2, n-n/2, cutEdges)
	case "torusdumbbell":
		return sparsecut.NewTorusDumbbell(n, cutEdges)
	case "planted":
		pOut := 3.0 / float64(n*n/4)
		return sparsecut.NewPlantedPartition(seed, n/2, n-n/2, 0.5, pOut)
	case "sensor":
		return sparsecut.NewSensorField(seed, n, cutEdges)
	default:
		return nil, nil, fmt.Errorf("unknown graph family %q", kind)
	}
}

func buildRule(kind string, part *sparsecut.Partition, epochK int64) (sparsecut.ExchangeRule, error) {
	switch kind {
	case "A":
		return sparsecut.NewSparseCutExchange(part, part.CutEdges()[0], epochK, sparsecut.ExactSwapWeight(part))
	case "vanilla":
		return sparsecut.NewAveragingExchange(), nil
	default:
		return nil, fmt.Errorf("unknown rule %q", kind)
	}
}

func buildSimAlgorithm(kind string, g *sparsecut.Graph, part *sparsecut.Partition, x0 []float64, epochK int64) (sparsecut.Algorithm, error) {
	switch kind {
	case "A":
		return sparsecut.NewAlgorithmA(g, x0, sparsecut.WithPartition(part),
			sparsecut.WithEpochTicks(epochK), sparsecut.WithWeight(sparsecut.ExactSwapWeight(part)))
	case "vanilla":
		return sparsecut.NewVanillaGossip(g, x0)
	default:
		return nil, fmt.Errorf("unknown rule %q", kind)
	}
}

// buildTransport assembles the transport stack for addrs mailbox
// addresses (one per node on the goroutine runtime, one per shard on the
// sharded one). A sharded run with no fault injection returns a nil
// transport: the runtime's internal direct path.
func buildTransport(addrs, nodes int, sharded, useTCP bool, drop float64, delay time.Duration, seed uint64) (sparsecut.Transport, string, error) {
	var tr sparsecut.Transport
	desc := ""
	switch {
	case useTCP:
		tcp, err := sparsecut.NewTCPTransport(addrs)
		if err != nil {
			return nil, "", err
		}
		port, _ := tcp.Port(0)
		tr = tcp
		desc = fmt.Sprintf("loopback TCP (%d listeners, addr 0 on port %d)", addrs, port)
	case sharded && drop == 0 && delay == 0:
		return nil, "in-process direct shard mailboxes", nil
	default:
		buf := 4 * nodes
		if sharded && buf > 1<<18 {
			buf = 1 << 18 // a few mailboxes serve all nodes; cap the buffers
		}
		tr = sparsecut.NewChanTransport(buf)
		desc = fmt.Sprintf("in-memory channels (%d mailboxes, buffer %d each)", addrs, buf)
	}
	if delay > 0 {
		var err error
		tr, err = sparsecut.NewDelayTransport(tr, delay, seed+17)
		if err != nil {
			return nil, "", err
		}
		desc += fmt.Sprintf(" + uniform delay [0,%v)", delay)
	}
	if drop > 0 {
		var err error
		tr, err = sparsecut.NewDropTransport(tr, drop, seed+99)
		if err != nil {
			return nil, "", err
		}
		desc += fmt.Sprintf(" + %.0f%% loss", drop*100)
	}
	return tr, desc, nil
}

// quantileDur renders a histogram quantile estimate as a rounded duration.
func quantileDur(h sparsecut.MetricsHistogram, q float64) time.Duration {
	v := h.Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	return time.Duration(v).Round(time.Microsecond)
}

// newHTTPListener binds the telemetry address up front so the printed URL
// carries a concrete port even when the user asks for ":0".
func newHTTPListener(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry listener on %q: %w", addr, err)
	}
	return ln, nil
}

// distRuntime is the surface shared by both runtimes that this CLI needs.
type distRuntime interface {
	Run(ctx context.Context, duration float64) error
	Values() []float64
	Mean() float64
	Variance() float64
	Exchanges() int64
	Aborted() int64
	Proposed() int64
	Applied() int64
}

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distrun:", err)
	os.Exit(1)
}
