package dist

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"sparsecut/internal/graph"
)

// Rule is the local update a committed exchange applies — the distributed
// counterpart of gossip.Algorithm's HandleTick. The responder of an
// exchange over edge e calls Delta once with both endpoint values, applies
// the exact negation to itself, and the initiator applies the returned
// delta. Because the two applied deltas are exact negations of one
// another, a committed exchange perturbs the value sum only by the two
// float roundings of x±d (~1 ulp each; no systematic drift), whatever the
// transport drops or delays in between — and an abort perturbs nothing.
//
// Rules are shared by all node goroutines of a cluster; implementations
// must be safe for concurrent use (SparseCutRule uses atomics for its tick
// counter).
type Rule interface {
	// Name identifies the rule in logs and tables.
	Name() string
	// Delta returns the signed amount the exchange over edge e adds to the
	// initiating endpoint's value, given the initiator's value xInit and
	// the responder's value xResp. The responder applies -delta.
	Delta(e graph.EdgeID, initiator graph.NodeID, xInit, xResp float64) float64
}

// VanillaRule is plain pairwise averaging: a committed exchange moves both
// endpoints to their mean, exactly as a tick of the simulator's vanilla
// algorithm does.
type VanillaRule struct{}

var _ Rule = VanillaRule{}

// NewVanillaRule returns the pairwise-averaging rule.
func NewVanillaRule() VanillaRule { return VanillaRule{} }

// Name implements Rule.
func (VanillaRule) Name() string { return "vanilla-averaging" }

// Delta implements Rule: half the value gap flows to the initiator.
func (VanillaRule) Delta(_ graph.EdgeID, _ graph.NodeID, xInit, xResp float64) float64 {
	return (xResp - xInit) / 2
}

// SparseCutRule is Algorithm A (internal/core) expressed as a local
// exchange rule:
//
//   - an internal edge (both endpoints on one side) averages its endpoints;
//   - a cut edge other than the designated ec commits with no value change;
//   - ec counts its exchanges and, at every epochTicks-th one, fires the
//     paper's non-convex swap x_a ← x_a + w(x_b − x_a),
//     x_b ← x_b − w(x_b − x_a).
//
// The tick counter is owned by the rule and advanced atomically by
// whichever endpoint of ec responds to the exchange, so the epoch schedule
// is consistent even though the two endpoints alternate as responder. The
// counter advances when a responder computes the update (proposal time):
// exchanges whose LOCK never arrived do not tick, and the rare proposal
// that is later refused has still consumed a tick — the natural reading of
// the paper's clock in a lossy network, where a tick may fire and its
// update come to nothing.
type SparseCutRule struct {
	part   *graph.Partition
	ec     graph.EdgeID
	epochK int64
	weight float64
	isCut  []bool
	ticks  atomic.Int64
	swaps  atomic.Int64
}

var _ Rule = (*SparseCutRule)(nil)

// NewSparseCutRule builds Algorithm A's exchange rule for a known
// partition, designated cut edge, swap period epochTicks (the paper's K)
// and swap coefficient weight (see internal/core/weight.go for the choice
// of coefficient).
func NewSparseCutRule(part *graph.Partition, cutEdge graph.EdgeID, epochTicks int64, weight float64) (*SparseCutRule, error) {
	if part == nil {
		return nil, errors.New("dist: SparseCutRule requires a partition")
	}
	g := part.Graph()
	if part.CutSize() == 0 {
		return nil, errors.New("dist: partition has no cut edges")
	}
	if cutEdge < 0 || int(cutEdge) >= g.NumEdges() {
		return nil, fmt.Errorf("dist: designated edge %d out of range", cutEdge)
	}
	if !part.IsCutEdge(cutEdge) {
		return nil, fmt.Errorf("dist: designated edge %v does not cross the cut", g.Edge(cutEdge))
	}
	if epochTicks < 1 {
		return nil, fmt.Errorf("dist: epoch ticks %d must be >= 1", epochTicks)
	}
	if !(weight > 0) || math.IsInf(weight, 0) {
		return nil, fmt.Errorf("dist: swap weight %v must be positive and finite", weight)
	}
	r := &SparseCutRule{part: part, ec: cutEdge, epochK: epochTicks, weight: weight}
	r.isCut = make([]bool, g.NumEdges())
	for _, id := range part.CutEdges() {
		r.isCut[id] = true
	}
	return r, nil
}

// Name implements Rule.
func (r *SparseCutRule) Name() string {
	return fmt.Sprintf("sparse-cut(w=%.4g, K=%d)", r.weight, r.epochK)
}

// Delta implements Rule.
func (r *SparseCutRule) Delta(e graph.EdgeID, _ graph.NodeID, xInit, xResp float64) float64 {
	switch {
	case !r.isCut[e]:
		return (xResp - xInit) / 2
	case e != r.ec:
		// Non-designated cut edges make no update (paper, Section 1.0.1).
		return 0
	default:
		if r.ticks.Add(1)%r.epochK != 0 {
			return 0
		}
		r.swaps.Add(1)
		// The swap is antisymmetric, so it needs no side orientation.
		return r.weight * (xResp - xInit)
	}
}

// Swaps returns the number of non-convex swaps committed so far.
func (r *SparseCutRule) Swaps() int64 { return r.swaps.Load() }

// Ticks returns the number of exchanges of the designated edge that have
// consumed an epoch tick so far.
func (r *SparseCutRule) Ticks() int64 { return r.ticks.Load() }

// EpochTicks returns the swap period K in committed ticks of ec.
func (r *SparseCutRule) EpochTicks() int64 { return r.epochK }

// Weight returns the swap coefficient.
func (r *SparseCutRule) Weight() float64 { return r.weight }
