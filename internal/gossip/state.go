// Package gossip implements the distributed-averaging algorithms the paper
// compares against — vanilla pairwise gossip, the general convex class C of
// Definition 2, and a push-sum baseline — together with the shared value
// state they (and the paper's Algorithm A in internal/core) operate on.
//
// The State type maintains the running sum and sum of squares of the value
// vector incrementally, so the variance the paper's averaging-time metric
// needs is available in O(1) after every event rather than O(n).
//
// Key types: State (O(1) incremental moments), Algorithm (the tick interface), BatchState and the *Ensemble replica batches. See DESIGN.md §6 (fused kernels) and §8 (replica batching).
package gossip

import (
	"fmt"
	"math"

	"sparsecut/internal/graph"
)

// resyncInterval bounds floating-point drift of the incremental moments:
// after this many point updates the sums are recomputed exactly.
const resyncInterval = 1 << 16

// State holds the node values of an averaging process plus incrementally
// maintained first and second moments.
//
// Internally the values are stored centered by the initial mean (algorithms
// in this repository are linear and shift-invariant, so running them on
// centered values is equivalent); this avoids the catastrophic cancellation
// that computing Σx² − (Σx)²/n would suffer once the process has converged
// to a large common mean. Values() reconstructs the original frame.
type State struct {
	offset  float64 // initial mean, added back on read
	y       []float64
	sum     float64 // Σy
	sumSq   float64 // Σy²
	updates int     // point updates since the last exact resync
	// dirty marks the incremental moments stale: the lazy batch updates
	// (AverageEdgesLazy and friends) touch only the values and defer the
	// moment bookkeeping to the next moment read, which resyncs exactly.
	dirty bool
}

// NewState initialises state from the vector x0 (copied, not aliased).
func NewState(x0 []float64) *State {
	s := &State{y: append([]float64(nil), x0...)}
	if len(x0) > 0 {
		m := 0.0
		for _, v := range x0 {
			m += v
		}
		s.offset = m / float64(len(x0))
		for i := range s.y {
			s.y[i] -= s.offset
		}
	}
	s.resync()
	return s
}

// N returns the number of nodes.
func (s *State) N() int { return len(s.y) }

// Get returns the value at node i in the original (uncentered) frame.
func (s *State) Get(i int) float64 { return s.y[i] + s.offset }

// Set assigns node i the value v (original frame), updating the moments in
// O(1).
func (s *State) Set(i int, v float64) {
	old := s.y[i]
	c := v - s.offset
	s.y[i] = c
	s.sum += c - old
	s.sumSq += c*c - old*old
	s.updates++
	if s.updates >= resyncInterval {
		s.resync()
	}
}

// Set2 assigns nodes i and j (i != j) the values vi, vj (original frame)
// in one fused call: one moment update, one resync check. It is
// bit-identical in the stored values to Set(i, vi); Set(j, vj) — the
// moment arithmetic is applied in the same order.
func (s *State) Set2(i, j int, vi, vj float64) {
	yi, yj := s.y[i], s.y[j]
	ci := vi - s.offset
	cj := vj - s.offset
	s.y[i] = ci
	s.y[j] = cj
	s.sum += ci - yi
	s.sum += cj - yj
	s.sumSq += ci*ci - yi*yi
	s.sumSq += cj*cj - yj*yj
	s.updates += 2
	if s.updates >= resyncInterval {
		s.resync()
	}
}

// AverageEdge applies the vanilla exchange on the edge {i, j}: both nodes
// move to their arithmetic mean, with one fused moment update. The
// arithmetic replicates Get/Get/Set/Set exactly (including the
// offset round-trips), so the stored values are bit-identical to the
// unfused sequence — the fused-kernel equivalence tests rely on this.
func (s *State) AverageEdge(i, j int) {
	yi, yj := s.y[i], s.y[j]
	c := ((yi + s.offset) + (yj + s.offset)) / 2
	c -= s.offset
	s.y[i] = c
	s.y[j] = c
	s.sum += c - yi
	s.sum += c - yj
	cc := c * c
	s.sumSq += cc - yi*yi
	s.sumSq += cc - yj*yj
	s.updates += 2
	if s.updates >= resyncInterval {
		s.resync()
	}
}

// ConvexEdge applies the class-C exchange with mixing parameter alpha on
// the edge {i, j}:
//
//	x_i ← α·x_i + (1−α)·x_j,  x_j ← α·x_j + (1−α)·x_i(old)
//
// with one fused moment update, bit-identical in the stored values to the
// unfused Get/Set sequence.
func (s *State) ConvexEdge(i, j int, alpha float64) {
	yi, yj := s.y[i], s.y[j]
	xi, xj := yi+s.offset, yj+s.offset
	ci := alpha*xi + (1-alpha)*xj - s.offset
	cj := alpha*xj + (1-alpha)*xi - s.offset
	s.y[i] = ci
	s.y[j] = cj
	s.sum += ci - yi
	s.sum += cj - yj
	s.sumSq += ci*ci - yi*yi
	s.sumSq += cj*cj - yj*yj
	s.updates += 2
	if s.updates >= resyncInterval {
		s.resync()
	}
}

// AverageEdgesLazy applies the vanilla exchange for every edge of the
// batch (endpoints resolved through the flat arrays eu, ev), updating the
// values only: the moment bookkeeping is deferred to the next moment read,
// which recomputes exactly. This is the untracked simulation hot loop —
// per event it costs two loads, one fused average and two stores, with
// sum/Σ² chains removed entirely. The stored values are bit-identical to
// the unfused Get/Set sequence.
func (s *State) AverageEdgesLazy(edges []graph.EdgeID, eu, ev []int32) {
	y, off := s.y, s.offset
	for _, e := range edges {
		i, j := eu[e], ev[e]
		yi, yj := y[i], y[j]
		c := ((yi + off) + (yj + off)) / 2
		c -= off
		y[i] = c
		y[j] = c
	}
	s.dirty = true
}

// ConvexEdgesLazy is AverageEdgesLazy for the class-C exchange with mixing
// parameter alpha.
func (s *State) ConvexEdgesLazy(edges []graph.EdgeID, eu, ev []int32, alpha float64) {
	y, off := s.y, s.offset
	beta := 1 - alpha
	for _, e := range edges {
		i, j := eu[e], ev[e]
		xi, xj := y[i]+off, y[j]+off
		y[i] = alpha*xi + beta*xj - off
		y[j] = alpha*xj + beta*xi - off
	}
	s.dirty = true
}

// Set2Lazy assigns nodes i and j (i != j) the values vi, vj (original
// frame), deferring the moment bookkeeping like AverageEdgesLazy.
func (s *State) Set2Lazy(i, j int, vi, vj float64) {
	s.y[i] = vi - s.offset
	s.y[j] = vj - s.offset
	s.dirty = true
}

// Values returns a fresh copy of the value vector in the original frame.
func (s *State) Values() []float64 {
	out := make([]float64, len(s.y))
	s.CopyInto(out)
	return out
}

// CopyInto writes the value vector (original frame) into dst — the
// allocation-free counterpart of Values for trajectory recording that
// samples repeatedly into a reused buffer. It panics if len(dst) != N().
func (s *State) CopyInto(dst []float64) {
	if len(dst) != len(s.y) {
		panic("gossip: CopyInto buffer length mismatch")
	}
	for i, v := range s.y {
		dst[i] = v + s.offset
	}
}

// syncIfDirty makes the moments exact after lazy batch updates.
func (s *State) syncIfDirty() {
	if s.dirty {
		s.resync()
		s.dirty = false
	}
}

// Mean returns the current average value. For the sum-preserving algorithms
// in this repository it is invariant over time up to float rounding.
func (s *State) Mean() float64 {
	if len(s.y) == 0 {
		return math.NaN()
	}
	s.syncIfDirty()
	return s.offset + s.sum/float64(len(s.y))
}

// Sum returns the current total Σx in the original frame.
func (s *State) Sum() float64 {
	s.syncIfDirty()
	return s.sum + s.offset*float64(len(s.y))
}

// Variance returns the paper's varX: the population variance of the value
// vector, maintained incrementally (recomputed exactly on the first read
// after a lazy batch update).
func (s *State) Variance() float64 {
	n := float64(len(s.y))
	if n == 0 {
		return 0
	}
	s.syncIfDirty()
	m := s.sum / n
	v := s.sumSq/n - m*m
	if v < 0 { // float rounding can push a converged process slightly negative
		return 0
	}
	return v
}

// resync recomputes the moments exactly.
func (s *State) resync() {
	s.sum, s.sumSq = 0, 0
	for _, v := range s.y {
		s.sum += v
		s.sumSq += v * v
	}
	s.updates = 0
}

// String describes the state compactly.
func (s *State) String() string {
	return fmt.Sprintf("state(n=%d, mean=%.6g, var=%.6g)", s.N(), s.Mean(), s.Variance())
}
