package check

import (
	"encoding/json"
	"fmt"
	"os"

	"sparsecut/internal/dist"
	"sparsecut/internal/graph"
)

// Schedule action ops, as they appear in Action.Op / trace JSON.
const (
	// OpDeliver removes in-flight message Msg and delivers it (a message
	// to a crashed node is lost). Choosing which index to deliver is what
	// models reordering.
	OpDeliver = "deliver"
	// OpDrop removes in-flight message Msg without delivering it.
	OpDrop = "drop"
	// OpDup appends a copy of in-flight message Msg to the network.
	OpDup = "dup"
	// OpInitiate makes unlocked node Node start an exchange over its
	// Edge-th incident half-edge.
	OpInitiate = "initiate"
	// OpTimeout fires node Node's lock timeout (abort the outstanding
	// initiation).
	OpTimeout = "timeout"
	// OpResend fires node Node's proposal retransmission lease.
	OpResend = "resend"
	// OpCrash fail-stops node Node (volatile initiation aborts; value,
	// seq counter, watermarks and held proposal survive).
	OpCrash = "crash"
	// OpRecover restarts crashed node Node (its held proposal becomes due
	// for retransmission).
	OpRecover = "recover"
)

// Action is one step of a schedule. Which fields matter depends on Op (see
// the op constants); Info is a human-readable rendering filled in when a
// counterexample trace is built and ignored on replay.
type Action struct {
	Op   string `json:"op"`
	Node int    `json:"node,omitempty"`
	Edge int    `json:"edge,omitempty"`
	Msg  int    `json:"msg,omitempty"`
	Info string `json:"info,omitempty"`
}

// same reports whether two actions are the same schedule step (Info is
// presentation, not identity).
func (a Action) same(b Action) bool {
	return a.Op == b.Op && a.Node == b.Node && a.Edge == b.Edge && a.Msg == b.Msg
}

// Trace is a self-contained, JSON-serializable counterexample: the system
// (graph, initial values, rule), the checker configuration, the violating
// schedule, and the violation it produced. Replay re-executes it from the
// JSON alone.
type Trace struct {
	Version int       `json:"version"`
	Graph   GraphSpec `json:"graph"`
	X0      []float64 `json:"x0"`
	Rule    RuleSpec  `json:"rule"`
	Options Options   `json:"options"`
	// Mutation is the seeded protocol bug's name (checker self-tests);
	// empty for the correct protocol. It mirrors Options.Mutation and
	// takes precedence over it when the two disagree.
	Mutation  string     `json:"mutation,omitempty"`
	Actions   []Action   `json:"actions"`
	Violation *Violation `json:"violation,omitempty"`
}

// GraphSpec serialises a graph as parallel edge-endpoint lists.
type GraphSpec struct {
	Nodes int   `json:"nodes"`
	EdgeU []int `json:"edge_u"`
	EdgeV []int `json:"edge_v"`
}

func graphSpecOf(g *graph.Graph) GraphSpec {
	gs := GraphSpec{Nodes: g.NumNodes()}
	for _, e := range g.Edges() {
		gs.EdgeU = append(gs.EdgeU, int(e.U))
		gs.EdgeV = append(gs.EdgeV, int(e.V))
	}
	return gs
}

func (gs GraphSpec) build() (*graph.Graph, error) {
	if len(gs.EdgeU) != len(gs.EdgeV) {
		return nil, fmt.Errorf("check: trace graph has %d edge_u but %d edge_v", len(gs.EdgeU), len(gs.EdgeV))
	}
	b := graph.NewBuilder(gs.Nodes)
	for i := range gs.EdgeU {
		b.AddEdge(graph.NodeID(gs.EdgeU[i]), graph.NodeID(gs.EdgeV[i]))
	}
	return b.Build()
}

// newTrace assembles a counterexample from an exploration's action path,
// annotating each action with a human-readable Info line by replaying the
// prefix.
func newTrace(spec Spec, opt Options, actions []Action, v *Violation) *Trace {
	tr := &Trace{
		Version: 1,
		Graph:   graphSpecOf(spec.Graph),
		X0:      append([]float64(nil), spec.X0...),
		Rule:    spec.Rule,
		Options: opt,
		Actions: annotate(spec, opt, append([]Action(nil), actions...)),
	}
	if opt.Mutation != dist.MutNone {
		tr.Mutation = opt.Mutation.String()
	}
	tr.Violation = v
	return tr
}

// annotate fills Action.Info by replaying the schedule on a fresh world.
func annotate(spec Spec, opt Options, actions []Action) []Action {
	w, err := newWorld(spec, opt)
	if err != nil {
		return actions
	}
	for i := range actions {
		actions[i].Info = w.describe(actions[i])
		if w.apply(actions[i]) != nil {
			break
		}
	}
	return actions
}

// describe renders an action against the current state (pre-application).
func (w *world) describe(a Action) string {
	switch a.Op {
	case OpDeliver, OpDrop, OpDup:
		if a.Msg >= 0 && a.Msg < len(w.net) {
			m := w.net[a.Msg]
			return fmt.Sprintf("%s %d->%d seq=%d x=%g", m.Kind, m.From, m.To, m.Seq, m.X)
		}
	case OpInitiate:
		adj := w.g.Neighbors(graph.NodeID(a.Node))
		if a.Node >= 0 && a.Node < len(w.nodes) && a.Edge >= 0 && a.Edge < len(adj) {
			return fmt.Sprintf("node %d locks toward %d (edge %d)", a.Node, adj[a.Edge].Peer, adj[a.Edge].Edge)
		}
	}
	return ""
}

// specAndOptions reconstructs the checkable system from a trace.
func (tr *Trace) specAndOptions() (Spec, Options, error) {
	g, err := tr.Graph.build()
	if err != nil {
		return Spec{}, Options{}, err
	}
	opt := tr.Options
	if tr.Mutation != "" {
		mu, ok := dist.ParseMutation(tr.Mutation)
		if !ok {
			return Spec{}, Options{}, fmt.Errorf("check: trace names unknown mutation %q", tr.Mutation)
		}
		opt.Mutation = mu
	}
	return Spec{Graph: g, X0: tr.X0, Rule: tr.Rule}, opt, nil
}

// Replay re-executes tr's schedule deterministically on a fresh world and
// returns the violation it produced, nil if the whole schedule ran with
// every invariant holding. The error return is for traces that cannot be
// executed at all (bad graph/rule, inapplicable action) — a replay that
// merely disagrees with tr.Violation is reported by comparing the returned
// violation via Violation.Same.
func Replay(tr *Trace) (*Violation, error) {
	return ReplayFlight(tr, nil)
}

// WriteFile serialises the trace as indented JSON.
func (tr *Trace) WriteFile(path string) error {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadTraceFile loads a trace written by Trace.WriteFile.
func ReadTraceFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tr := new(Trace)
	if err := json.Unmarshal(data, tr); err != nil {
		return nil, fmt.Errorf("check: parsing trace %s: %w", path, err)
	}
	return tr, nil
}
