package dist

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/leakcheck"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
)

// dumbbellCase builds the canonical worst case: two 6-cliques, one cut
// edge, all initial variance across the cut.
func dumbbellCase(t *testing.T) (*graph.Graph, *graph.Partition, []float64) {
	t.Helper()
	g, part, err := graph.Dumbbell(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, part, gossip.CutIndicator(part)
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestSumConservedAcrossAbortsAndDrops(t *testing.T) {
	g, part, x0 := dumbbellCase(t)
	rule, err := NewSparseCutRule(part, part.CutEdges()[0], 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately hostile transport: every message is delayed by up to
	// 2ms and then dropped with probability 0.25. The lock timeout must
	// exceed the worst-case round trip (3 messages) or the initiator
	// refuses every proposal as stale; 10ms leaves room for one drop plus
	// a retransmission within the window.
	delay, err := NewDelayTransport(NewChanTransport(8*g.NumNodes()), 2*time.Millisecond, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDropTransport(delay, 0.25, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(g, x0, rule, ClusterConfig{
		TimeScale: 4 * time.Millisecond, Seed: 1, Transport: tr,
		LockTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	if cl.Exchanges() == 0 {
		t.Fatal("no exchanges committed")
	}
	if cl.Aborted() == 0 {
		t.Error("25% drop with 2ms delays produced no aborts")
	}
	if drift := math.Abs(sum(cl.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g across %d exchanges / %d aborts",
			drift, cl.Exchanges(), cl.Aborted())
	}
	if drift := math.Abs(cl.Mean()); drift > 1e-9 {
		t.Errorf("mean drifted to %g, want 0", cl.Mean())
	}
	// No variance assertion here: the sparse-cut swap is non-convex and
	// legitimately re-inflates varX until the sides remix, which this
	// hostile transport intentionally starves. The invariant under fire is
	// the sum, checked above; convergence is TestConvergenceMatchesSimulator's
	// job under a sane transport.
	t.Logf("exchanges=%d aborted=%d dropped=%d var=%.4g",
		cl.Exchanges(), cl.Aborted(), tr.Dropped(), cl.Variance())
}

func TestConvergenceMatchesSimulator(t *testing.T) {
	g, part, x0 := dumbbellCase(t)
	_ = part
	const horizon = 5.0

	// Simulator reference: geometric mean over 20 seeds of vanilla
	// gossip's variance ratio at the horizon.
	simLog := 0.0
	const simTrials = 20
	for s := uint64(1); s <= simTrials; s++ {
		alg, err := gossip.NewVanilla(g, x0)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sim.NewEngine(g, alg, sim.WithSeed(s))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(sim.Until(horizon))
		simLog += math.Log(alg.Variance())
	}
	simRatio := math.Exp(simLog / simTrials)

	// Runtime: geometric mean over 6 seeds at the same horizon. The large
	// TimeScale keeps the lock windows (scheduler wake latency) small
	// relative to the mean clock gap, so the effective exchange rate stays
	// close to the simulator's nominal rate-1 edge clocks.
	distLog := 0.0
	const distTrials = 6
	for s := uint64(1); s <= distTrials; s++ {
		cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{TimeScale: 24 * time.Millisecond, Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(context.Background(), horizon); err != nil {
			t.Fatal(err)
		}
		distLog += math.Log(cl.Variance())
	}
	distRatio := math.Exp(distLog / distTrials)

	if distRatio > 2*simRatio || simRatio > 2*distRatio {
		t.Errorf("variance ratio at t=%g: runtime %.4g vs simulator %.4g — more than 2x apart",
			horizon, distRatio, simRatio)
	}
	t.Logf("t=%g: runtime ratio %.4g, simulator ratio %.4g (factor %.2f)",
		horizon, distRatio, simRatio, distRatio/simRatio)
}

func TestCleanShutdownOnContextCancel(t *testing.T) {
	g, part, x0 := dumbbellCase(t)
	rule, err := NewSparseCutRule(part, part.CutEdges()[0], 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := leakcheck.Snapshot()
	cl, err := NewCluster(g, x0, rule, ClusterConfig{TimeScale: 4 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = cl.Run(ctx, 1e6) // nominally ~4000s of wall time; the cancel cuts it short
	// Run's documented typed-error contract: a caller-cancelled run
	// surfaces ctx.Err() itself (matchable with errors.Is), after the
	// same full drain a horizon shutdown performs.
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run under cancel returned %v, want errors.Is(err, context.Canceled)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled Run took %v to shut down", elapsed)
	}
	base.Check(t)
	if drift := math.Abs(sum(cl.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g across a cancelled run", drift)
	}
	// The cluster is still usable after a cancelled run.
	if err := cl.Run(context.Background(), 1); err != nil {
		t.Errorf("Run after cancelled run: %v", err)
	}
	base.Check(t)
}

func TestNoGoroutineLeakAfterRun(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	base := leakcheck.Snapshot()
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{TimeScale: 2 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeated runs reuse nothing leaky
		if err := cl.Run(context.Background(), 3); err != nil {
			t.Fatal(err)
		}
	}
	base.Check(t)
}

func TestRepeatedRunsContinue(t *testing.T) {
	g, _, _ := dumbbellCase(t)
	// Random initial values: every committed internal exchange strictly
	// reduces the variance, so progress does not hinge on the (slow,
	// Poisson-rare) single cut edge.
	x0 := gossip.UniformRandom(rng.New(9), g.NumNodes())
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{TimeScale: 4 * time.Millisecond, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var0 := cl.Variance()
	if err := cl.Run(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	ex1 := cl.Exchanges()
	if ex1 == 0 {
		t.Fatal("first run committed no exchanges")
	}
	if err := cl.Run(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	if cl.Exchanges() <= ex1 {
		t.Errorf("second run committed no exchanges (%d then %d)", ex1, cl.Exchanges())
	}
	if cl.Variance() >= var0 {
		t.Errorf("variance %g did not decrease from %g after 16 time units", cl.Variance(), var0)
	}
	if drift := math.Abs(cl.Mean() - sum(x0)/float64(len(x0))); drift > 1e-9 {
		t.Errorf("mean drifted by %g across two runs", drift)
	}
}

func TestClusterOverTCP(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	tr, err := NewTCPTransport(g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{TimeScale: 8 * time.Millisecond, Seed: 2, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	// The assertions target transport plumbing (delivery, framing, clean
	// reuse of cached connections), not convergence speed: on a loaded
	// machine the socket round-trips shrink the effective exchange rate.
	if cl.Exchanges() == 0 {
		t.Fatal("no exchanges committed over TCP")
	}
	if drift := math.Abs(cl.Mean()); drift > 1e-9 {
		t.Errorf("mean drifted to %g over TCP", cl.Mean())
	}
}

func TestIsolatedNodeDoesNotPanic(t *testing.T) {
	// A graph with an isolated node: its clock must simply never fire
	// (rate 0), not panic the process.
	g, err := graph.NewBuilder(3).AddEdge(0, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	x0 := []float64{1, -1, 7}
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{TimeScale: 2 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if got := cl.Values()[2]; got != 7 {
		t.Errorf("isolated node's value changed to %g", got)
	}
	if drift := math.Abs(sum(cl.Values()) - 7); drift > 1e-12 {
		t.Errorf("sum drifted by %g", drift)
	}
}

func TestRunSurvivesTransportDeath(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	tr := NewChanTransport(4 * g.NumNodes())
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{TimeScale: 4 * time.Millisecond, Seed: 2, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		tr.Close() // kill the transport under a running cluster
	}()
	start := time.Now()
	err = cl.Run(context.Background(), 1e6) // would be hours of wall time
	var se *SendError
	if !errors.As(err, &se) || !errors.Is(err, ErrClosed) {
		t.Errorf("Run on a dying transport returned %v, want a *SendError wrapping ErrClosed", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Run took %v to notice the dead transport", elapsed)
	}
	// Stranded proposals are settled in-process: the sum stays exact.
	if drift := math.Abs(sum(cl.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g across a transport death", drift)
	}
}

func TestRunSurvivesInnerTransportDeathUnderDelay(t *testing.T) {
	// Same as above, but the dying transport is hidden behind a
	// DelayTransport, whose sends succeed asynchronously: the inner
	// failure must still surface (on subsequent sends) so Run's drain can
	// bail instead of retransmitting forever.
	g, _, x0 := dumbbellCase(t)
	inner := NewChanTransport(4 * g.NumNodes())
	tr, err := NewDelayTransport(inner, time.Millisecond, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{TimeScale: 4 * time.Millisecond, Seed: 2, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		inner.Close() // kill only the inner transport; the delay layer stays up
	}()
	start := time.Now()
	err = cl.Run(context.Background(), 1e6)
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Run on a dying inner transport returned %v, want an error wrapping ErrClosed", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Run took %v to notice the dead inner transport", elapsed)
	}
	if drift := math.Abs(sum(cl.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g across an inner transport death", drift)
	}
}

func TestSparseCutRuleSemantics(t *testing.T) {
	g, part, _ := dumbbellCase(t)
	ec := part.CutEdges()[0]
	const w = 3.0
	rule, err := NewSparseCutRule(part, ec, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	// Internal edges average regardless of the epoch counter.
	var internal graph.EdgeID = -1
	for id := 0; id < g.NumEdges(); id++ {
		if !part.IsCutEdge(graph.EdgeID(id)) {
			internal = graph.EdgeID(id)
			break
		}
	}
	u := g.Edge(internal).U
	if d := rule.Delta(internal, u, 1, 5); d != 2 {
		t.Errorf("internal edge delta %g, want 2 (averaging)", d)
	}
	// The designated edge fires on every 3rd committed tick.
	want := []float64{0, 0, w * (5.0 - 1.0), 0, 0, w * (5.0 - 1.0)}
	for i, exp := range want {
		if d := rule.Delta(ec, g.Edge(ec).U, 1, 5); d != exp {
			t.Errorf("ec tick %d: delta %g, want %g", i+1, d, exp)
		}
	}
	if rule.Swaps() != 2 {
		t.Errorf("Swaps() = %d, want 2", rule.Swaps())
	}
	if rule.EpochTicks() != 3 || rule.Weight() != w {
		t.Errorf("accessors: K=%d w=%g", rule.EpochTicks(), rule.Weight())
	}
}

func TestSparseCutRuleMultiCutEdges(t *testing.T) {
	g, part, err := graph.Dumbbell(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ec := part.CutEdges()[0]
	other := part.CutEdges()[1]
	rule, err := NewSparseCutRule(part, ec, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := rule.Delta(other, g.Edge(other).U, 1, 5); d != 0 {
		t.Errorf("non-designated cut edge delta %g, want 0", d)
	}
	if d := rule.Delta(ec, g.Edge(ec).U, 1, 5); d != 8 {
		t.Errorf("designated edge with K=1 delta %g, want 8", d)
	}
}

func TestSparseCutRuleValidation(t *testing.T) {
	g, part, _ := dumbbellCase(t)
	var internal graph.EdgeID
	for id := 0; id < g.NumEdges(); id++ {
		if !part.IsCutEdge(graph.EdgeID(id)) {
			internal = graph.EdgeID(id)
			break
		}
	}
	ec := part.CutEdges()[0]
	cases := []struct {
		name   string
		part   *graph.Partition
		ec     graph.EdgeID
		k      int64
		weight float64
	}{
		{"nil partition", nil, ec, 2, 1},
		{"non-cut designated edge", part, internal, 2, 1},
		{"out-of-range edge", part, graph.EdgeID(g.NumEdges()), 2, 1},
		{"zero epoch", part, ec, 0, 1},
		{"zero weight", part, ec, 2, 0},
		{"negative weight", part, ec, 2, -3},
		{"NaN weight", part, ec, 2, math.NaN()},
	}
	for _, c := range cases {
		if _, err := NewSparseCutRule(c.part, c.ec, c.k, c.weight); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestVanillaRuleDelta(t *testing.T) {
	r := NewVanillaRule()
	if d := r.Delta(0, 0, 2, 6); d != 2 {
		t.Errorf("delta %g, want 2", d)
	}
	if r.Name() == "" {
		t.Error("empty rule name")
	}
}

func TestClusterValidation(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	edgeless, err := graph.NewBuilder(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(nil, nil, NewVanillaRule(), ClusterConfig{}); err == nil {
		t.Error("nil graph: no error")
	}
	if _, err := NewCluster(edgeless, []float64{1, 2}, NewVanillaRule(), ClusterConfig{}); err == nil {
		t.Error("edgeless graph: no error")
	}
	if _, err := NewCluster(g, x0[:3], NewVanillaRule(), ClusterConfig{}); err == nil {
		t.Error("short x0: no error")
	}
	if _, err := NewCluster(g, x0, nil, ClusterConfig{}); err == nil {
		t.Error("nil rule: no error")
	}
	if _, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{TimeScale: -time.Second}); err == nil {
		t.Error("negative time scale: no error")
	}
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{TimeScale: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := cl.Run(context.Background(), d); err == nil {
			t.Errorf("duration %v: no error", d)
		}
	}
	if got := cl.Values(); len(got) != g.NumNodes() {
		t.Errorf("Values() length %d, want %d", len(got), g.NumNodes())
	}
	if v := cl.Variance(); math.Abs(v-1) > 1e-12 {
		t.Errorf("pre-run variance %g, want 1", v)
	}
}
