package dist

// wheel.go: a hierarchical timing wheel for the sharded runtime.
//
// The goroutine runtime spends one time.Timer (plus a goroutine parked in a
// select) per node; at 10^6 nodes that is 10^6 runtime timers fighting over
// the runtime's timer heaps. A shard instead owns ONE wheel and schedules
// all of its nodes' deadlines (gossip clocks, Await/Pend protocol deadlines,
// crash windows) as intrusive list entries in O(1), paying one coarse
// time.Timer per shard loop to pace wheel advancement.
//
// Design (classic hashed hierarchical wheel, Varghese & Lauck):
//
//   - Time is quantised into ticks of w.tick nanoseconds. w.cur is the
//     absolute tick index with the invariant "every timer due at a slot
//     <= cur has already fired".
//   - Level 0 holds timers due within the next 256 ticks, indexed by
//     slot&255. Levels 1 and 2 hold timers due within 256^2 and 256^3
//     ticks, hashed by higher slot bits; an overflow list catches the
//     rest. When cur crosses a 256-boundary the matching level-1 slot
//     cascades down (and level 2 / overflow at the wider boundaries), so
//     every timer reaches level 0 before it is due.
//   - Timers in one slot fire in FIFO insertion order, and cascading
//     preserves that order, so two timers scheduled for the same tick fire
//     in the order they were scheduled.
//   - A timer scheduled for the past (or for the current tick) lands at
//     cur+1: zero-delay timers fire on the NEXT advance, never recursively
//     inside schedule. This mirrors time.AfterFunc(0, ...) running the
//     callback asynchronously rather than inline.
//
// The wheel is single-owner: exactly one shard loop goroutine may call
// schedule/cancel/advance. That is what makes cancel-after-fire trivially
// safe — a fired timer has t.list == nil, so a late cancel is a no-op, and
// there is no window where a concurrent fire could resurrect it.

const (
	wheelBits  = 8
	wheelSlots = 1 << wheelBits // 256 slots per level
	wheelMask  = wheelSlots - 1
)

// timerKind says what a fired timer means to the shard loop.
type timerKind uint8

const (
	tkClock timerKind = iota // node's Poisson gossip clock
	tkProto                  // node's protocol deadline (Await timeout or Pend resend)
	tkCrash                  // node's next crash or recovery instant
)

// wheelTimer is an intrusive doubly-linked timer. The shard embeds two per
// node (clock + protocol) in flat slices, so scheduling allocates nothing.
type wheelTimer struct {
	next, prev *wheelTimer
	list       *wheelList // owning slot list; nil when not scheduled
	when       int64      // absolute deadline, ns
	node       int32      // absolute node id
	kind       timerKind
}

// scheduledIn reports whether the timer is currently pending.
func (t *wheelTimer) scheduledIn() bool { return t.list != nil }

// wheelList is one slot's FIFO of timers (push at tail, fire from head).
type wheelList struct {
	head, tail *wheelTimer
}

func (l *wheelList) push(t *wheelTimer) {
	t.next = nil
	t.prev = l.tail
	if l.tail != nil {
		l.tail.next = t
	} else {
		l.head = t
	}
	l.tail = t
	t.list = l
}

func (l *wheelList) remove(t *wheelTimer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		l.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		l.tail = t.prev
	}
	t.next, t.prev, t.list = nil, nil, nil
}

// detach empties the list and returns its old head; links between the
// returned timers are left intact for the caller to walk.
func (l *wheelList) detach() *wheelTimer {
	h := l.head
	l.head, l.tail = nil, nil
	return h
}

type wheel struct {
	tick     int64 // ns per slot
	cur      int64 // absolute slot index; slots <= cur have fired
	levels   [3][wheelSlots]wheelList
	overflow wheelList
	pending  int // scheduled-but-unfired timer count
}

func newWheel(tickNs, nowNs int64) *wheel {
	if tickNs <= 0 {
		panic("dist: wheel tick must be positive")
	}
	return &wheel{tick: tickNs, cur: nowNs / tickNs}
}

// schedule (re)schedules t for absolute time whenNs. A past or current-tick
// deadline fires on the next advance.
func (w *wheel) schedule(t *wheelTimer, whenNs int64) {
	if t.list != nil {
		t.list.remove(t)
		w.pending--
	}
	t.when = whenNs
	w.place(t, w.cur+1)
	w.pending++
}

// cancel removes t if pending. Cancelling a fired (or never-scheduled)
// timer is a no-op.
func (w *wheel) cancel(t *wheelTimer) {
	if t.list == nil {
		return
	}
	t.list.remove(t)
	w.pending--
}

// place links t into the level whose span covers its deadline. minSlot
// floors the target slot: cur+1 for fresh schedules (the current slot
// already fired), cur during cascade (the current slot is about to fire).
func (w *wheel) place(t *wheelTimer, minSlot int64) {
	slot := t.when / w.tick
	if slot < minSlot {
		slot = minSlot
	}
	switch d := slot - w.cur; {
	case d < wheelSlots:
		w.levels[0][slot&wheelMask].push(t)
	case d < wheelSlots*wheelSlots:
		w.levels[1][(slot>>wheelBits)&wheelMask].push(t)
	case d < wheelSlots*wheelSlots*wheelSlots:
		w.levels[2][(slot>>(2*wheelBits))&wheelMask].push(t)
	default:
		w.overflow.push(t)
	}
}

// advance fires every timer due at or before nowNs, in slot order and FIFO
// within a slot. fire may schedule, reschedule, or cancel timers (including
// the one being fired, which is already detached).
func (w *wheel) advance(nowNs int64, fire func(*wheelTimer)) {
	target := nowNs / w.tick
	for w.cur < target {
		w.cur++
		if w.cur&wheelMask == 0 {
			w.cascade(1, int((w.cur>>wheelBits)&wheelMask))
			if (w.cur>>wheelBits)&wheelMask == 0 {
				w.cascade(2, int((w.cur>>(2*wheelBits))&wheelMask))
				w.recheckOverflow()
			}
		}
		l := &w.levels[0][w.cur&wheelMask]
		for t := l.head; t != nil; t = l.head {
			l.remove(t)
			w.pending--
			fire(t)
		}
	}
}

// cascade re-places every timer hashed into the given upper-level slot; all
// of them are now within the span of a lower level. minSlot is cur (not
// cur+1): a cascaded timer due exactly at the slot being entered lands in
// level 0 at cur and fires in this same advance step.
func (w *wheel) cascade(level, idx int) {
	t := w.levels[level][idx].detach()
	for t != nil {
		next := t.next
		t.next, t.prev, t.list = nil, nil, nil
		w.place(t, w.cur)
		t = next
	}
}

func (w *wheel) recheckOverflow() {
	t := w.overflow.detach()
	for t != nil {
		next := t.next
		t.next, t.prev, t.list = nil, nil, nil
		w.place(t, w.cur)
		t = next
	}
}
