package sim

import (
	"math"
	"math/bits"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// TickKernel is the fused fast path of the simulator. A Handler that also
// implements TickKernel lets the engine drive it in batches — event
// sampling stays inline in the engine (no scheduler interface call per
// event for the global clock), and the algorithm's per-event update runs
// in one monomorphic loop per batch instead of one virtual dispatch per
// event. The kernel methods must apply exactly the same update as
// HandleTick: the engine guarantees that for any seed the fused run
// produces bit-identical trajectories to the HandleTick path, and the
// package tests of the algorithms enforce it.
type TickKernel interface {
	// TickEdges applies the algorithm's update for a batch of ticks:
	// edges[k] ticked at times[k], in order. len(times) == len(edges).
	TickEdges(edges []graph.EdgeID, times []float64)
	// TickEdgeVar applies a single tick and returns the resulting
	// population variance of the value vector — one moment read per event,
	// for tracked runs (averaging-time estimation).
	TickEdgeVar(e graph.EdgeID, t float64) float64
	// Variance returns the current population variance without ticking.
	Variance() float64
}

// batchSize is the number of events sampled ahead of each fused kernel
// call. Scratch cost is two small arrays per engine; larger batches stop
// paying once the virtual-dispatch amortisation is negligible.
const batchSize = 256

// kernel reports whether the fused fast path applies: the handler
// implements TickKernel and no per-event observers are registered (the
// empty-observer fast path).
func (e *Engine) kernel() (TickKernel, bool) {
	if len(e.observers) != 0 {
		return nil, false
	}
	k, ok := e.handler.(TickKernel)
	return k, ok
}

func (e *Engine) ensureBatch() {
	if e.batchE == nil {
		e.batchE = make([]graph.EdgeID, batchSize)
		e.batchT = make([]float64, batchSize)
	}
}

// fillUntil samples up to max events into the batch scratch, advancing the
// simulated clock, stopping after the first event whose time reaches maxT
// (that event is included, matching Run(Until(maxT)) which tests the stop
// condition before each event, not after; pass maxT = +Inf for a pure
// event-count fill). It returns the number of events sampled.
//
// This is the single fused sampling loop: the global-clock draws are
// inlined — ziggurat fast path + Lemire pick replicated bit-for-bit in
// exactly the draw order of scheduler.next() — so fused and generic runs
// consume identical random streams (the kernel equivalence tests enforce
// this).
func (e *Engine) fillUntil(max int, maxT float64) int {
	n := 0
	if gs, ok := e.scheduler.(*globalScheduler); ok {
		r, inv, now := gs.r, gs.invTotal, gs.now
		bound := uint64(gs.numEdges)
		uniform, al := gs.uniform, gs.alias
		for n < max && now < maxT {
			// Inline ziggurat common case (rng.ExpUnit), shared slow
			// finisher on the rare branch.
			u := r.Uint64()
			g, okFast := rng.ZigAccept(u)
			if !okFast {
				g = r.ExpUnitSlow(u)
			}
			now += g * inv
			e.batchT[n] = now
			if uniform {
				// Inline Lemire pick (rng.Intn), shared rejection finisher.
				hi, lo := bits.Mul64(r.Uint64(), bound)
				if lo < bound {
					hi = r.IntnSlow(hi, lo, bound)
				}
				e.batchE[n] = graph.EdgeID(hi)
			} else {
				e.batchE[n] = graph.EdgeID(al.pick(r))
			}
			n++
		}
		gs.now = now
	} else {
		for n < max {
			edge, at := e.scheduler.next()
			e.batchE[n] = edge
			e.batchT[n] = at
			n++
			if at >= maxT {
				break
			}
		}
	}
	if n > 0 {
		e.now = e.batchT[n-1]
	}
	return n
}

// RunEvents processes events until the cumulative event count reaches n —
// semantically identical to Run(MaxEvents(n)) — taking the fused kernel
// fast path when available.
func (e *Engine) RunEvents(n int64) (t float64, events int64) {
	k, ok := e.kernel()
	if !ok {
		return e.Run(MaxEvents(n))
	}
	e.ensureBatch()
	for e.events < n {
		b := e.fillUntil(int(min(n-e.events, batchSize)), math.Inf(1))
		k.TickEdges(e.batchE[:b], e.batchT[:b])
		e.events += int64(b)
	}
	return e.now, e.events
}

// RunUntil processes events until simulated time reaches maxT —
// semantically identical to Run(Until(maxT)) — taking the fused kernel
// fast path when available.
func (e *Engine) RunUntil(maxT float64) (t float64, events int64) {
	k, ok := e.kernel()
	if !ok {
		return e.Run(Until(maxT))
	}
	e.ensureBatch()
	for e.now < maxT {
		b := e.fillUntil(batchSize, maxT)
		k.TickEdges(e.batchE[:b], e.batchT[:b])
		e.events += int64(b)
	}
	return e.now, e.events
}

// Tracked configures RunTracked. The levels are absolute variances (the
// caller scales its ratio thresholds by varX(0) once), so the loop runs
// division-free.
type Tracked struct {
	// ExceedLevel: a post-tick variance above this records an exceedance.
	ExceedLevel float64
	// StopLevel: the run may stop once the variance is below this and the
	// quiet period has passed since the last exceedance.
	StopLevel float64
	// Quiet is the minimum simulated time since the last exceedance before
	// stopping.
	Quiet float64
	// MaxTime hard-caps the run.
	MaxTime float64
}

// TrackedResult reports a RunTracked outcome.
type TrackedResult struct {
	// LastExceed is the time of the last event whose post-tick variance
	// exceeded ExceedLevel (0 if none did).
	LastExceed float64
	// Censored is set when the run ended at MaxTime still at or above
	// StopLevel.
	Censored bool
}

// RunTracked drives the engine's handler — which must implement
// TickKernel, with no observers registered — while tracking the
// last-exceedance statistic of the averaging-time estimator inline: per
// event it costs one kernel call and two float compares — no closures, no
// second variance read. The stop rule matches the estimator's: stop at
// MaxTime, or once the variance is below StopLevel and Quiet time has
// passed since the last exceedance. It returns ok = false (running
// nothing) when the fast path does not apply, so callers fall back to the
// generic Run loop rather than silently skipping observers.
func (e *Engine) RunTracked(cfg Tracked) (res TrackedResult, ok bool) {
	k, ok := e.kernel()
	if !ok {
		return TrackedResult{}, false
	}
	v := k.Variance()
	lastExceed := 0.0
	for {
		if e.now >= cfg.MaxTime {
			break
		}
		if v < cfg.StopLevel && e.now >= lastExceed+cfg.Quiet {
			break
		}
		edge, at := e.scheduler.next()
		e.now = at
		v = k.TickEdgeVar(edge, at)
		if v > cfg.ExceedLevel {
			lastExceed = at
		}
		e.events++
	}
	return TrackedResult{
		LastExceed: lastExceed,
		Censored:   e.now >= cfg.MaxTime && v >= cfg.StopLevel,
	}, true
}
