package avgtime

import (
	"math"
	"testing"

	"sparsecut/internal/core"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	g := graph.Complete(4)
	x0 := []float64{1, -1, 1, -1}
	f := VanillaFactory(g, x0)
	bad := []Config{
		{Trials: -1},
		{Threshold: 1.5},
		{Threshold: -0.1},
		{Quantile: 1.5},
		{MarginFactor: 2},
		{MaxTime: -1},
		{QuietTime: -1},
	}
	for i, cfg := range bad {
		if _, err := Estimate(g, f, cfg); err == nil {
			t.Errorf("config %d not rejected: %+v", i, cfg)
		}
	}
	if _, err := Estimate(g, nil, Config{}); err == nil {
		t.Error("nil factory not rejected")
	}
}

func TestFactoryErrorPropagates(t *testing.T) {
	g := graph.Complete(4)
	f := func(int, *rng.RNG) (gossip.Algorithm, error) {
		return gossip.NewVanilla(g, []float64{1}) // wrong length
	}
	if _, err := Estimate(g, f, Config{Trials: 1}); err == nil {
		t.Error("factory error not propagated")
	}
}

func TestAlreadyAveragedIsZero(t *testing.T) {
	g := graph.Complete(4)
	res, err := Estimate(g, VanillaFactory(g, []float64{3, 3, 3, 3}), Config{Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tav != 0 {
		t.Errorf("Tav = %v for constant start, want 0", res.Tav)
	}
	if res.Censored != 0 {
		t.Error("constant start censored")
	}
}

func TestVanillaOnCompleteGraph(t *testing.T) {
	// K_16: lambda2 = 16, analytic bound Tvan <= 6/16 = 0.375. The measured
	// value must be positive and within the bound's order of magnitude.
	g := graph.Complete(16)
	x0, err := gossip.Spike(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(g, VanillaFactory(g, x0), Config{Trials: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tav <= 0 {
		t.Fatalf("Tav = %v, want positive", res.Tav)
	}
	if res.Tav > 0.375*3 {
		t.Errorf("Tav = %v far above analytic bound 0.375", res.Tav)
	}
	if res.Censored != 0 {
		t.Errorf("%d trials censored", res.Censored)
	}
	if len(res.PerTrial) != 15 {
		t.Errorf("%d per-trial values", len(res.PerTrial))
	}
	if res.Events <= 0 {
		t.Error("no events recorded")
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestMeasureTvanAgreesWithSpectralBound(t *testing.T) {
	// Measured Tvan must be below the analytic bound 6/lambda2 (it is an
	// upper bound) and above a small fraction of it.
	g := graph.Complete(12)
	res, err := MeasureTvan(g, Config{Trials: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bound := 6.0 / 12
	if res.Tav > bound {
		t.Errorf("measured Tvan %v exceeds analytic bound %v", res.Tav, bound)
	}
	if res.Tav < bound/30 {
		t.Errorf("measured Tvan %v implausibly far below bound %v", res.Tav, bound)
	}
}

func TestDumbbellVanillaScalesLinearly(t *testing.T) {
	// Theorem 1: on a symmetric dumbbell with one cut edge, vanilla needs
	// Tav = Omega(n). Doubling n should roughly double Tav.
	measure := func(n int) float64 {
		g, p, err := graph.Dumbbell(n/2, n/2, 1)
		if err != nil {
			t.Fatal(err)
		}
		x0 := gossip.CutIndicator(p)
		res, err := Estimate(g, VanillaFactory(g, x0), Config{Trials: 7, Seed: 11, MaxTime: 1e4})
		if err != nil {
			t.Fatal(err)
		}
		return res.Tav
	}
	t16, t64 := measure(16), measure(64)
	if t64 < 2*t16 {
		t.Errorf("Tav(64) = %v not clearly larger than Tav(16) = %v (want ~4x)", t64, t16)
	}
}

func TestAlgorithmABeatsVanillaOnDumbbell(t *testing.T) {
	// The headline claim, at test scale: on a symmetric dumbbell Algorithm A
	// is much faster than vanilla.
	g, p, err := graph.Dumbbell(24, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := gossip.CutIndicator(p)
	vanilla, err := Estimate(g, VanillaFactory(g, x0), Config{Trials: 7, Seed: 5, MaxTime: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	algA, err := Estimate(g, func(int, *rng.RNG) (gossip.Algorithm, error) {
		return core.New(g, x0, core.WithPartition(p))
	}, Config{Trials: 7, Seed: 5, MaxTime: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if algA.Censored > 0 {
		t.Fatalf("algorithm A censored %d trials", algA.Censored)
	}
	if algA.Tav >= vanilla.Tav/2 {
		t.Errorf("algorithm A Tav %v vs vanilla %v: expected clear win", algA.Tav, vanilla.Tav)
	}
}

func TestQuietPeriodUsesEpochHint(t *testing.T) {
	// An algorithm whose variance collapses quickly but then spikes at a
	// swap must not be declared converged prematurely. Construct algorithm A
	// with paper weight on equal sides (the oscillating regime): the
	// estimator should either censor or report a large last-exceedance, not
	// a tiny one.
	g, p, err := graph.Dumbbell(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := gossip.CutIndicator(p)
	res, err := Estimate(g, func(int, *rng.RNG) (gossip.Algorithm, error) {
		return core.New(g, x0, core.WithPartition(p), core.WithWeightRule(core.WeightPaper))
	}, Config{Trials: 3, Seed: 2, MaxTime: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Oscillation means the variance keeps returning to ~var0 forever.
	if res.Censored != 3 {
		t.Errorf("expected all trials censored in oscillating regime, got %d/3 (Tav=%v)", res.Censored, res.Tav)
	}
}

func TestEpsilonConfig(t *testing.T) {
	cfg := EpsilonConfig(0.1)
	if math.Abs(cfg.Threshold-0.01) > 1e-15 {
		t.Errorf("threshold %v", cfg.Threshold)
	}
	if math.Abs(cfg.Quantile-0.9) > 1e-15 {
		t.Errorf("quantile %v", cfg.Quantile)
	}
	// And it should run.
	g := graph.Complete(8)
	x0, err := gossip.Spike(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trials = 5
	res, err := Estimate(g, VanillaFactory(g, x0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tav <= 0 {
		t.Errorf("epsilon time %v", res.Tav)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := graph.Complete(8)
	x0, err := gossip.Spike(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func() Result {
		res, err := Estimate(g, VanillaFactory(g, x0), Config{Trials: 4, Seed: 123})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Tav != b.Tav || a.Events != b.Events {
		t.Error("estimate not deterministic for fixed seed")
	}
}

func TestSchedulerChoiceWorks(t *testing.T) {
	g := graph.Complete(8)
	x0, err := gossip.Spike(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(g, VanillaFactory(g, x0), Config{Trials: 3, Scheduler: sim.PerEdgeClocks})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tav <= 0 {
		t.Error("per-edge-clock estimate failed")
	}
}

func TestCensoringAtTinyMaxTime(t *testing.T) {
	// A path graph cannot average in time 0.001: the trial must censor.
	g := graph.Path(32)
	x0 := gossip.Linear(32)
	res, err := Estimate(g, VanillaFactory(g, x0), Config{Trials: 2, MaxTime: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Censored != 2 {
		t.Errorf("censored = %d, want 2", res.Censored)
	}
}

func TestEstimateWithRatesNodeClockSlower(t *testing.T) {
	// Under the node-clock model the dumbbell's cut edge ticks at rate
	// ~4/n instead of 1, so vanilla's averaging time must grow by ~n/4.
	g, p, err := graph.Dumbbell(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := gossip.CutIndicator(p)
	edgeClock, err := Estimate(g, VanillaFactory(g, x0), Config{Trials: 5, Seed: 3, MaxTime: 1e4, MarginFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	nodeClock, err := EstimateWithRates(g, sim.NodeClockRates(g), VanillaFactory(g, x0),
		Config{Trials: 5, Seed: 3, MaxTime: 1e5, MarginFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if nodeClock.Tav < 2*edgeClock.Tav {
		t.Errorf("node-clock Tav %v should be much larger than edge-clock %v", nodeClock.Tav, edgeClock.Tav)
	}
}

func TestEstimateWithRatesValidation(t *testing.T) {
	g := graph.Complete(4)
	x0, err := gossip.Spike(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong rate vector length must surface as an error, not a panic.
	if _, err := EstimateWithRates(g, []float64{1}, VanillaFactory(g, x0), Config{Trials: 1}); err == nil {
		t.Error("rate length mismatch not rejected")
	}
}

// hideKernel wraps an Algorithm so it no longer implements sim.TickKernel,
// forcing runTrial onto the HandleTick fallback.
type hideKernel struct{ inner gossip.Algorithm }

func (h hideKernel) Name() string                         { return h.inner.Name() }
func (h hideKernel) HandleTick(e graph.EdgeID, t float64) { h.inner.HandleTick(e, t) }
func (h hideKernel) Values() []float64                    { return h.inner.Values() }
func (h hideKernel) Mean() float64                        { return h.inner.Mean() }
func (h hideKernel) Variance() float64                    { return h.inner.Variance() }

// The fused tracked loop and the generic fallback must agree on the
// estimate: same events, same censoring, per-trial last-exceedance times
// equal to float accuracy.
func TestKernelAndFallbackTrialsAgree(t *testing.T) {
	g, p, err := graph.Dumbbell(12, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := gossip.CutIndicator(p)
	cfg := Config{Trials: 5, Seed: 17, MaxTime: 1e4}
	kernel, err := Estimate(g, VanillaFactory(g, x0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := Estimate(g, func(int, *rng.RNG) (gossip.Algorithm, error) {
		v, err := gossip.NewVanilla(g, x0)
		return hideKernel{inner: v}, err
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if kernel.Censored != fallback.Censored || kernel.Events != fallback.Events {
		t.Errorf("kernel (censored=%d, events=%d) vs fallback (censored=%d, events=%d)",
			kernel.Censored, kernel.Events, fallback.Censored, fallback.Events)
	}
	for i := range kernel.PerTrial {
		a, b := kernel.PerTrial[i], fallback.PerTrial[i]
		if a != b {
			t.Errorf("trial %d: last exceedance %v kernel vs %v fallback", i, a, b)
		}
	}
}
