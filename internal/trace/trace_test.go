package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("var")
	if _, _, ok := s.Last(); ok {
		t.Error("empty series reported a last point")
	}
	s.Add(0, 1)
	s.Add(1, 0.5)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	tt, v := s.At(1)
	if tt != 1 || v != 0.5 {
		t.Errorf("At(1) = %v, %v", tt, v)
	}
	lt, lv, ok := s.Last()
	if !ok || lt != 1 || lv != 0.5 {
		t.Errorf("Last = %v, %v, %v", lt, lv, ok)
	}
}

func TestDownsampleSmallSeriesCopied(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 0)
	s.Add(1, 1)
	d, err := s.Downsample(10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	// Must be a copy, not an alias.
	d.T[0] = 42
	if s.T[0] == 42 {
		t.Error("downsample aliased source")
	}
}

func TestDownsampleKeepsEndpoints(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 1000; i++ {
		s.Add(float64(i), float64(i)*2)
	}
	d, err := s.Downsample(50)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() > 51 {
		t.Errorf("Len = %d, want <= 51", d.Len())
	}
	if d.T[0] != 0 {
		t.Error("first point lost")
	}
	lt, lv, _ := d.Last()
	if lt != 999 || lv != 1998 {
		t.Errorf("last point %v, %v", lt, lv)
	}
	// Monotone time.
	for i := 1; i < d.Len(); i++ {
		if d.T[i] <= d.T[i-1] {
			t.Fatal("downsampled times not increasing")
		}
	}
}

func TestDownsampleRejectsTinyBudget(t *testing.T) {
	s := NewSeries("x")
	if _, err := s.Downsample(1); err == nil {
		t.Error("maxPoints=1 not rejected")
	}
}

func TestSampledRecorder(t *testing.T) {
	r, err := NewSampledRecorder("v", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Record(float64(i), float64(i))
	}
	// Kept: i = 0, 3, 6, 9.
	if r.Series.Len() != 4 {
		t.Errorf("recorded %d points, want 4", r.Series.Len())
	}
	if r.Series.T[0] != 0 || r.Series.T[3] != 9 {
		t.Errorf("wrong sample points: %v", r.Series.T)
	}
}

func TestSampledRecorderRejectsBadStride(t *testing.T) {
	if _, err := NewSampledRecorder("v", 0); err == nil {
		t.Error("stride 0 not rejected")
	}
}

func TestWriteCSV(t *testing.T) {
	a := NewSeries("alpha")
	a.Add(0, 1)
	a.Add(0.5, 0.25)
	b := NewSeries("")
	b.Add(1, 2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "series,t,value" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "alpha,0,1") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "series,1,2") {
		t.Errorf("unnamed series row = %q", lines[3])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf); err == nil {
		t.Error("no-series write not rejected")
	}
}
