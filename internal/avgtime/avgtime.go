// Package avgtime estimates the paper's averaging time Tav (Definition 1)
// by Monte-Carlo simulation.
//
// Definition 1 asks for the smallest t such that, from the worst-case
// initial vector, with probability at least 1 − 1/e the normalized variance
// varX(T)/varX(0) never exceeds e⁻² for any T > t. The per-trial statistic
// is therefore the *last exceedance time*
//
//	L = sup{ T : varX(T)/varX(0) > e⁻² },
//
// and Tav is the (1 − 1/e)-quantile of L's distribution. The estimator runs
// independent trials, records L in each, and reports the empirical
// quantile.
//
// Non-convex algorithms (Algorithm A) can re-inflate the variance by up to
// ‖A‖² ≤ n² at a swap, so "currently below the threshold" does not imply
// "below forever". A trial therefore only stops once the ratio is below
// threshold·MarginFactor (default 1e−8, far below any single-swap
// re-inflation on the graph sizes used here) and a quiet period of two
// epochs has passed since the last exceedance; trials that still exceed the
// margin at MaxTime are reported as censored.
//
// Key types: Config, Result, Estimate/EstimateWithRates (per-event) and EstimateBatched (replica-batched, DESIGN.md §8). The timing model is DESIGN.md §2.
package avgtime

import (
	"errors"
	"fmt"
	"math"

	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
	"sparsecut/internal/stats"
)

// DefaultThreshold is e⁻², the variance ratio in Definition 1.
var DefaultThreshold = math.Exp(-2)

// DefaultQuantile is 1 − 1/e, the confidence level in Definition 1.
var DefaultQuantile = 1 - math.Exp(-1)

// Factory constructs a fresh algorithm instance for one trial. The supplied
// RNG stream is private to the trial (pass it to algorithms that need
// internal randomness, e.g. push-sum).
type Factory func(trial int, r *rng.RNG) (gossip.Algorithm, error)

// EpochHinter is implemented by algorithms with an intrinsic epoch length
// (Algorithm A); the estimator sizes its quiet period from the hint.
type EpochHinter interface {
	EpochDuration() float64
}

// Config controls the estimator. The zero value is usable: all fields
// default as documented.
type Config struct {
	// Trials is the number of independent simulations (default 9).
	Trials int
	// Threshold is the variance-ratio level defining an exceedance
	// (default e⁻², Definition 1).
	Threshold float64
	// Quantile is the confidence quantile of the last-exceedance
	// distribution to report as Tav (default 1 − 1/e).
	Quantile float64
	// MarginFactor stops a trial only when ratio < Threshold·MarginFactor
	// (default 1e−8).
	MarginFactor float64
	// QuietTime is the minimum simulated time that must pass after the
	// last exceedance before a trial may stop. Default: twice the
	// algorithm's EpochDuration hint when available, otherwise 1.
	QuietTime float64
	// MaxTime hard-caps each trial (default 1e6 time units). Trials
	// reaching it above the margin are counted in Result.Censored.
	MaxTime float64
	// Scheduler selects the event generator (default sim.GlobalClock).
	// Ignored by EstimateBatched.
	Scheduler sim.SchedulerKind
	// Seed seeds the trial streams (default 1).
	Seed uint64
	// BatchWidth caps the number of trials resident per replica batch in
	// EstimateBatched (0 = all trials in one batch). It bounds memory
	// only; the Result is byte-identical for any width. Ignored by
	// Estimate.
	BatchWidth int
	// Observer, when non-nil, receives periodic sim.BatchStats from
	// EstimateBatched's engines, with Events accumulated across batches so
	// the meter is monotone over the whole estimate. Observation never
	// consumes randomness: the Result is byte-identical with or without
	// an observer. Ignored by Estimate.
	Observer func(sim.BatchStats)
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 9
	}
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	if c.Quantile == 0 {
		c.Quantile = DefaultQuantile
	}
	if c.MarginFactor == 0 {
		c.MarginFactor = 1e-8
	}
	if c.MaxTime == 0 {
		c.MaxTime = 1e6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Trials < 1 {
		return fmt.Errorf("avgtime: trials %d < 1", c.Trials)
	}
	if c.Threshold <= 0 || c.Threshold >= 1 {
		return fmt.Errorf("avgtime: threshold %v outside (0,1)", c.Threshold)
	}
	if c.Quantile <= 0 || c.Quantile > 1 {
		return fmt.Errorf("avgtime: quantile %v outside (0,1]", c.Quantile)
	}
	if c.MarginFactor <= 0 || c.MarginFactor > 1 {
		return fmt.Errorf("avgtime: margin factor %v outside (0,1]", c.MarginFactor)
	}
	if c.MaxTime <= 0 {
		return fmt.Errorf("avgtime: max time %v must be positive", c.MaxTime)
	}
	if c.QuietTime < 0 {
		return fmt.Errorf("avgtime: quiet time %v negative", c.QuietTime)
	}
	return nil
}

// quietFor derives the trial's quiet period: the configured QuietTime,
// defaulting to twice the algorithm's epoch-duration hint when it
// provides one and 1 otherwise. Shared by the per-event and batched
// estimators so the Definition-1 stop rule cannot drift between them.
func (c Config) quietFor(alg any) float64 {
	if c.QuietTime != 0 {
		return c.QuietTime
	}
	if h, ok := alg.(EpochHinter); ok {
		return 2 * h.EpochDuration()
	}
	return 1
}

// Result summarises an estimation run.
type Result struct {
	// Tav is the Config.Quantile empirical quantile of the per-trial last
	// exceedance times — the Definition 1 estimate.
	Tav float64
	// PerTrial holds each trial's last exceedance time L.
	PerTrial []float64
	// Mean and CI95 are the sample mean of L and its 95% half-width.
	Mean, CI95 float64
	// Censored counts trials that hit MaxTime while still above
	// threshold·margin; their L values are lower bounds.
	Censored int
	// Events is the total number of simulated edge ticks across trials.
	Events int64
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("Tav=%.4g (mean=%.4g ±%.3g, trials=%d, censored=%d)",
		r.Tav, r.Mean, r.CI95, len(r.PerTrial), r.Censored)
}

// Estimate measures the averaging time of the algorithm produced by factory
// on graph g under the paper's rate-1 edge clocks.
func Estimate(g *graph.Graph, factory Factory, cfg Config) (Result, error) {
	return EstimateWithRates(g, nil, factory, cfg)
}

// EstimateWithRates is Estimate under heterogeneous per-edge clock rates
// (nil rates = rate 1 everywhere). Used by the timing-model experiments
// (node-clock model, random rates).
func EstimateWithRates(g *graph.Graph, rates []float64, factory Factory, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if factory == nil {
		return Result{}, errors.New("avgtime: nil factory")
	}
	root := rng.New(cfg.Seed)
	res := Result{PerTrial: make([]float64, 0, cfg.Trials)}
	for trial := 0; trial < cfg.Trials; trial++ {
		algRNG := root.Split()
		simRNG := root.Split()
		alg, err := factory(trial, algRNG)
		if err != nil {
			return Result{}, fmt.Errorf("avgtime: trial %d factory: %w", trial, err)
		}
		last, censored, events, err := runTrial(g, rates, alg, simRNG, cfg)
		if err != nil {
			return Result{}, fmt.Errorf("avgtime: trial %d: %w", trial, err)
		}
		if censored {
			res.Censored++
		}
		res.Events += events
		res.PerTrial = append(res.PerTrial, last)
	}
	q, err := stats.Quantile(res.PerTrial, cfg.Quantile)
	if err != nil {
		return Result{}, err
	}
	res.Tav = q
	res.Mean, res.CI95 = stats.MeanCI95(res.PerTrial)
	return res, nil
}

// runTrial simulates one trial and returns the last exceedance time.
//
// Algorithms implementing sim.TickKernel take the engine's fused tracked
// loop: zero closures and exactly one moment read per event. The fallback
// drives HandleTick through the generic engine, still computing the
// variance ratio once per event (the handler stores it; the stop condition
// only reads it).
func runTrial(g *graph.Graph, rates []float64, alg gossip.Algorithm, r *rng.RNG, cfg Config) (last float64, censored bool, events int64, err error) {
	var0 := alg.Variance()
	if var0 == 0 {
		return 0, false, 0, nil // already averaged
	}
	quiet := cfg.quietFor(alg)
	stopMargin := cfg.Threshold * cfg.MarginFactor
	opts := []sim.Option{sim.WithRNG(r), sim.WithScheduler(cfg.Scheduler)}
	if rates != nil {
		opts = append(opts, sim.WithRates(rates))
	}

	if _, isKernel := alg.(sim.TickKernel); isKernel {
		eng, err := sim.NewEngine(g, alg, opts...)
		if err != nil {
			return 0, false, 0, err
		}
		if res, ok := eng.RunTracked(sim.Tracked{
			ExceedLevel: cfg.Threshold * var0,
			StopLevel:   stopMargin * var0,
			Quiet:       quiet,
			MaxTime:     cfg.MaxTime,
		}); ok {
			return res.LastExceed, res.Censored, eng.Events(), nil
		}
	}

	// Identical absolute-level predicates as the kernel path (not ratio
	// divisions), so both paths classify boundary events the same way.
	lastExceed := 0.0
	exceedLevel := cfg.Threshold * var0
	stopLevel := stopMargin * var0
	v := alg.Variance()
	eng, err := sim.NewEngine(g, sim.HandlerFunc(func(e graph.EdgeID, t float64) {
		alg.HandleTick(e, t)
		v = alg.Variance()
		if v > exceedLevel {
			lastExceed = t
		}
	}), opts...)
	if err != nil {
		return 0, false, 0, err
	}
	stop := func(t float64, _ int64) bool {
		return t >= cfg.MaxTime || (v < stopLevel && t >= lastExceed+quiet)
	}
	endT, events := eng.Run(stop)
	censored = endT >= cfg.MaxTime && v >= stopLevel
	return lastExceed, censored, events, nil
}

// EpsilonConfig returns a Config measuring the ε-averaging time of Boyd et
// al. (2005): the first time the relative ℓ2 error ‖x − x̄·1‖/‖x(0) − x̄·1‖
// drops below ε with probability 1 − ε. In variance terms the threshold is
// ε² and the quantile 1 − ε.
func EpsilonConfig(eps float64) Config {
	return Config{Threshold: eps * eps, Quantile: 1 - eps}
}

// VanillaFactory builds the standard factory for vanilla gossip with a
// fixed initial vector.
func VanillaFactory(g *graph.Graph, x0 []float64) Factory {
	return func(int, *rng.RNG) (gossip.Algorithm, error) {
		return gossip.NewVanilla(g, x0)
	}
}

// MeasureTvan empirically measures Tvan(g), the averaging time of vanilla
// gossip. Definition 1 takes a supremum over initial vectors; as a
// practical stand-in this uses the spike initial condition (all variance at
// one node), which excites every decay mode of the process and tracks the
// worst case up to constants on the graphs used in this repository. The
// analytic counterpart is spectral.TvanBound = 6/λ2; the package tests
// compare the two.
func MeasureTvan(g *graph.Graph, cfg Config) (Result, error) {
	x0, err := gossip.Spike(g.NumNodes(), 0)
	if err != nil {
		return Result{}, err
	}
	return Estimate(g, VanillaFactory(g, x0), cfg)
}
