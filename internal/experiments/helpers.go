package experiments

import (
	"fmt"

	"sparsecut/internal/avgtime"
	"sparsecut/internal/core"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/spectral"
)

// defaultSpectralOpts centralises the eigensolver settings used across
// experiments.
func defaultSpectralOpts() spectral.Options { return spectral.Options{} }

// measureConvex estimates Tav for a class-C algorithm (monotone variance,
// so the estimator may stop exactly at the threshold: MarginFactor 1).
func measureConvex(g *graph.Graph, x0 []float64, alpha float64, trials int, seed uint64, maxTime float64) (avgtime.Result, error) {
	factory := func(int, *rng.RNG) (gossip.Algorithm, error) {
		if alpha == 0.5 {
			return gossip.NewVanilla(g, x0)
		}
		return gossip.NewConvex(g, x0, alpha)
	}
	return avgtime.Estimate(g, factory, avgtime.Config{
		Trials:       trials,
		Seed:         seed,
		MaxTime:      maxTime,
		MarginFactor: 1, // convex updates never re-inflate the variance
	})
}

// measureAlgorithmA estimates Tav for Algorithm A with the given options.
func measureAlgorithmA(g *graph.Graph, x0 []float64, trials int, seed uint64, maxTime float64, opts ...core.Option) (avgtime.Result, error) {
	factory := func(int, *rng.RNG) (gossip.Algorithm, error) {
		return core.New(g, x0, opts...)
	}
	return avgtime.Estimate(g, factory, avgtime.Config{
		Trials:  trials,
		Seed:    seed,
		MaxTime: maxTime,
	})
}

// dumbbellCase builds the symmetric dumbbell workload with its worst-case
// initial vector.
func dumbbellCase(n, cutEdges int) (*graph.Graph, *graph.Partition, []float64, error) {
	g, p, err := graph.SymmetricDumbbell(n, cutEdges)
	if err != nil {
		return nil, nil, nil, err
	}
	return g, p, gossip.CutIndicator(p), nil
}

// pick returns quick when Params.Quick is set, full otherwise.
func pick[T any](p Params, quick, full T) T {
	if p.Quick {
		return quick
	}
	return full
}

// measuredSideTvans empirically measures Tvan on the two side subgraphs of
// a partition — the estimator pathway the paper's K formula actually wants
// (it is defined in terms of Tvan itself, not an upper bound on it).
func measuredSideTvans(part *graph.Partition, seed uint64) (tvan1, tvan2 float64, err error) {
	for i, s := range []graph.Side{graph.Side1, graph.Side2} {
		sub, _ := part.Subgraph(s)
		res, err := avgtime.MeasureTvan(sub, avgtime.Config{
			Trials:       5,
			Seed:         seed + uint64(i),
			MaxTime:      10 * float64(sub.NumNodes()),
			MarginFactor: 1, // vanilla is monotone
		})
		if err != nil {
			return 0, 0, fmt.Errorf("measuring Tvan of %v side: %w", s, err)
		}
		if i == 0 {
			tvan1 = res.Tav
		} else {
			tvan2 = res.Tav
		}
	}
	return tvan1, tvan2, nil
}

// fmtCensored annotates a Tav value with a ">=" marker when trials were
// censored at MaxTime (the value is then a lower bound).
func fmtCensored(tav float64, censored int) string {
	if censored > 0 {
		return fmt.Sprintf(">=%.4g", tav)
	}
	return fmt.Sprintf("%.4g", tav)
}
