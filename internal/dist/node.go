package dist

import (
	"sync"
	"time"

	"sparsecut/internal/flight"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// node is one actor of the runtime. It owns its protocol state outright —
// no other goroutine ever reads or writes it while the cluster runs — and
// communicates exclusively through the transport.
//
// The protocol itself lives in machine.go as a pure state machine; the
// actor owns only what the protocol does not: the Poisson clock and its
// RNG, the wall-clock timer plumbing, the crash schedule, and the routing
// of StepOut effects into the cluster's counters and the transport. The
// lockstep test in machine_test.go proves this wrapper adds no hidden
// state: replaying the actor's recorded event stream through fresh
// NodeStates reproduces its exact outputs and final values.
//
// # Timing model
//
// Node u initiates at Poisson rate deg(u)/2 (in simulated time units,
// scaled to wall time by ClusterConfig.TimeScale) and picks a uniformly
// random incident edge. Edge {u,v} is then initiated at total rate
// deg(u)/2·1/deg(u) + deg(v)/2·1/deg(v) = 1 — exactly the rate-1
// independent edge clocks of internal/sim, so simulator horizons and
// runtime durations are directly comparable.
//
// # Crash schedule
//
// ClusterConfig.Crashes assigns each node fail-stop windows relative to
// the run's start. While down the node reads and discards its mailbox
// (a message to a dead node is lost) and fires no timers; recovery
// re-arms the clock and retransmits any held proposal (see
// Machine.Crash/Recover for what state survives). A node still down when
// the drain phase begins is force-recovered so every exchange resolves
// before Run returns.
type node struct {
	id    int
	cl    *Cluster
	r     *rng.RNG
	inbox <-chan Message
	rate  float64 // initiation rate in simulated-time units: deg/2

	st       NodeState
	nextInit time.Time

	// crashSpec is this node's share of ClusterConfig.Crashes, sorted by
	// At; wins is the wall-clock rendering rebuilt at each Run start.
	crashSpec []CrashEvent
	wins      []crashWindow
	winIdx    int
	crashed   bool
	recoverAt time.Time // zero while crashed = down until drain
}

type crashWindow struct {
	at    time.Time
	until time.Time // zero = until drain
}

// stepKind discriminates the protocol events the actor feeds the machine;
// the lockstep tap records them for replay.
type stepKind uint8

const (
	stepDeliver stepKind = iota + 1
	stepInitiate
	stepTimeout
	stepResend
	stepCrash
	stepRecover
)

// nodeEvent is one recorded protocol event (lockstep test plumbing; see
// Cluster.tap).
type nodeEvent struct {
	node     int
	kind     stepKind
	msg      Message // stepDeliver
	he       graph.HalfEdge
	nowNs    int64
	draining bool
	out      StepOut
}

func newNode(id int, cl *Cluster, r *rng.RNG, inbox <-chan Message, x0 float64) *node {
	deg := cl.g.Degree(graph.NodeID(id))
	return &node{
		id:    id,
		cl:    cl,
		r:     r,
		inbox: inbox,
		rate:  float64(deg) / 2,
		st:    *NewNodeState(id, x0),
	}
}

// resetForRun reinstalls the run's initial value and crash schedule.
// Called by Run before the node goroutines start.
func (n *node) resetForRun(x0 float64, start time.Time) {
	n.st.X = x0
	n.st.Await = nil
	n.st.Pend = nil
	n.crashed = false
	n.winIdx = 0
	n.wins = n.wins[:0]
	for _, ev := range n.crashSpec {
		w := crashWindow{at: start.Add(time.Duration(ev.At * float64(n.cl.cfg.TimeScale)))}
		if ev.Recover > 0 {
			w.until = start.Add(time.Duration(ev.Recover * float64(n.cl.cfg.TimeScale)))
		}
		n.wins = append(n.wins, w)
	}
}

// scheduleNext draws the next clock fire: an Exp(rate) gap in simulated
// time, scaled to wall time. An isolated node has no edges to tick and its
// clock never fires (its value simply never changes, as in the simulator).
func (n *node) scheduleNext(now time.Time) {
	if n.rate == 0 {
		return
	}
	gap := n.r.ExpFloat64(n.rate) * float64(n.cl.cfg.TimeScale)
	n.nextInit = now.Add(time.Duration(gap))
}

// loop is the actor body. drainC closes when the run's horizon is reached:
// the node stops initiating and proposing but keeps serving (answering
// late proposals, re-committing duplicates, retransmitting its own held
// proposal) so every exchange resolves. stopC closes once the cluster has
// observed global quiescence; the node then exits.
func (n *node) loop(drainC, stopC <-chan struct{}, drainWG *sync.WaitGroup) {
	defer n.cl.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	draining := false
	n.scheduleNext(time.Now())
	for {
		var timerC <-chan time.Time
		if next, ok := n.nextDeadline(draining); ok {
			timer.Reset(time.Until(next))
			timerC = timer.C
		}
		select {
		case <-stopC:
			return
		case <-drainC:
			draining = true
			drainC = nil
			// Remaining crash windows are cancelled and a down node is
			// force-recovered: the drain phase must be able to resolve
			// every held proposal, which needs all nodes answering.
			n.winIdx = len(n.wins)
			if n.crashed {
				n.recover(time.Now())
			}
			drainWG.Done()
		case m := <-n.inbox:
			if n.crashed {
				n.cl.crashLost.Add(1)
				recordNetDrop(n.cl.rec, m, n.id, flight.ReasonDead)
				continue
			}
			n.step(stepDeliver, m, graph.HalfEdge{}, time.Now(), draining)
		case <-timerC:
			n.onTimer(draining)
		}
	}
}

// nextDeadline returns the earliest pending wall-clock deadline.
func (n *node) nextDeadline(draining bool) (time.Time, bool) {
	var t time.Time
	ok := false
	add := func(d time.Time) {
		if !ok || d.Before(t) {
			t, ok = d, true
		}
	}
	if n.crashed {
		// A dead node has exactly one deadline: its recovery, if scheduled.
		if !n.recoverAt.IsZero() {
			add(n.recoverAt)
		}
		return t, ok
	}
	if n.winIdx < len(n.wins) {
		add(n.wins[n.winIdx].at)
	}
	if !draining && n.rate > 0 {
		add(n.nextInit)
	}
	if n.st.Await != nil {
		add(time.Unix(0, n.st.Await.DeadlineNs))
	}
	if n.st.Pend != nil {
		add(time.Unix(0, n.st.Pend.ResendNs))
	}
	return t, ok
}

// onTimer services whichever deadlines have passed.
func (n *node) onTimer(draining bool) {
	now := time.Now()
	if n.crashed {
		if !n.recoverAt.IsZero() && !now.Before(n.recoverAt) {
			n.recover(now)
		}
		return
	}
	if n.winIdx < len(n.wins) && !now.Before(n.wins[n.winIdx].at) {
		n.crash(now)
		return
	}
	nowNs := now.UnixNano()
	if n.st.Await != nil && nowNs >= n.st.Await.DeadlineNs {
		n.step(stepTimeout, Message{}, graph.HalfEdge{}, now, draining)
	}
	if n.st.Pend != nil && nowNs >= n.st.Pend.ResendNs {
		n.step(stepResend, Message{}, graph.HalfEdge{}, now, draining)
	}
	if !draining && n.rate > 0 && !now.Before(n.nextInit) {
		if !n.st.Locked() {
			adj := n.cl.g.Neighbors(graph.NodeID(n.id))
			n.step(stepInitiate, Message{}, adj[n.r.Intn(len(adj))], now, draining)
		}
		// A fire while locked is simply skipped, like a simulator tick on
		// a busy pair; the clock always keeps running.
		n.scheduleNext(now)
	}
}

// crash enters the current crash window.
func (n *node) crash(now time.Time) {
	n.crashed = true
	n.recoverAt = n.wins[n.winIdx].until
	n.winIdx++
	n.cl.crashes.Add(1)
	n.step(stepCrash, Message{}, graph.HalfEdge{}, now, false)
}

// recover leaves the crash window and re-arms the clock.
func (n *node) recover(now time.Time) {
	n.crashed = false
	n.recoverAt = time.Time{}
	n.step(stepRecover, Message{}, graph.HalfEdge{}, now, false)
	n.scheduleNext(now)
}

// step feeds one protocol event to the pure machine and routes its effects
// into the cluster's accounting and the transport.
func (n *node) step(kind stepKind, m Message, he graph.HalfEdge, now time.Time, draining bool) {
	nowNs := now.UnixNano()
	var pre FlightPre
	if n.cl.rec != nil {
		// Snapshot the Await/Pend identity the step may clear; emitStep
		// needs it to name the exchange an abort or rollback resolved.
		pre = FlightPreOf(&n.st)
	}
	var out StepOut
	switch kind {
	case stepDeliver:
		out = n.cl.mc.Deliver(&n.st, m, nowNs, draining)
	case stepInitiate:
		out = n.cl.mc.Initiate(&n.st, he, nowNs)
	case stepTimeout:
		out = n.cl.mc.TimeoutAwait(&n.st)
	case stepResend:
		out = n.cl.mc.Resend(&n.st, nowNs)
	case stepCrash:
		out = n.cl.mc.Crash(&n.st)
	case stepRecover:
		out = n.cl.mc.Recover(&n.st, nowNs)
	}
	if tap := n.cl.tap; tap != nil {
		tap(nodeEvent{node: n.id, kind: kind, msg: m, he: he, nowNs: nowNs, draining: draining, out: out})
	}
	if n.cl.rec != nil {
		n.emitStep(kind, m, out, pre, nowNs)
	}
	n.applyOut(out, nowNs)
}

// applyOut folds a StepOut into the cluster's counters and telemetry and
// hands its messages to the transport.
func (n *node) applyOut(out StepOut, nowNs int64) {
	if out.Proposed {
		n.cl.awaiting.Add(1)
		n.cl.proposed.Add(1)
		n.cl.met.proposed.Inc(n.id)
	}
	if out.PendCreated {
		n.cl.pending.Add(1)
	}
	if out.Applied {
		n.cl.applied.Add(1)
	}
	if out.Applied || out.Aborted {
		n.cl.awaiting.Add(-1)
	}
	if out.Aborted {
		n.cl.aborted.Add(1)
	}
	if out.Committed || out.PendDropped {
		n.cl.pending.Add(-1)
	}
	if out.Committed {
		n.cl.exchanges.Add(1)
	}
	if out.Applied || out.Committed {
		n.cl.met.publish(n.id, n.st.X)
	}
	if out.Applied && out.LatencyNs >= 0 {
		if h := n.cl.met.latency; h != nil {
			h.Observe(out.LatencyNs)
		}
	}
	for _, m := range out.Send {
		n.send(m, nowNs)
	}
}

func (n *node) send(m Message, nowNs int64) {
	n.cl.met.sent[m.Kind].Inc(n.id)
	if rec := n.cl.rec; rec != nil {
		rec.Record(msgRecord(flight.EvSend, m, n.id, nowNs))
	}
	if err := n.cl.tr.Send(m); err != nil {
		n.cl.noteSendErr(err)
	}
}
