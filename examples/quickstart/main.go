// Quickstart: build the paper's dumbbell graph, run Algorithm A from the
// worst-case initial condition, and watch the variance collapse.
package main

import (
	"fmt"
	"log"

	"sparsecut"
)

func main() {
	// Two 32-node cliques joined by a single edge: the graph G' from the
	// paper's introduction, with its planted sparse-cut partition.
	g, part, err := sparsecut.NewDumbbell(32, 32, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)
	fmt.Println("cut:  ", part)

	// The worst-case initial vector: +1 on one side, -1 on the other.
	x0 := sparsecut.WorstCaseInit(part)

	// Algorithm A: vanilla gossip inside each clique plus a rare
	// non-convex swap across the designated cut edge.
	alg, err := sparsecut.NewAlgorithmA(g, x0, sparsecut.WithPartition(part))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("algo: ", alg.Name())

	for _, horizon := range []float64{2, 5, 10, 25} {
		run, err := sparsecut.NewAlgorithmA(g, x0, sparsecut.WithPartition(part))
		if err != nil {
			log.Fatal(err)
		}
		res := sparsecut.Simulate(g, run, horizon, 1)
		fmt.Printf("t=%5.1f  varX(t)/varX(0) = %-12.3g swaps = %d\n",
			res.Time, res.VarianceRatio, run.Swaps())
	}
}
