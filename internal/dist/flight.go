package dist

import (
	"time"

	"sparsecut/internal/flight"
)

// This file is the runtime's side of the causal flight recorder. The
// translation from protocol steps to flight.Records lives in
// FlightEmitter, shared by both drivers of the Machine — the live
// goroutine runtime (node.go, wall-clock time) and the model checker's
// replayer (internal/check, virtual ticks) — so a production capture and
// a counterexample replay stitch into identical span structures.
// Everything is behind the nil-recorder contract: with
// ClusterConfig.Flight unset the only cost is one pointer test per step.

// Initiator returns the id of the node that initiated the exchange this
// message belongs to, derived from the Kind/Re lineage. (initiator, Seq)
// is the causal key the flight recorder's span stitcher groups on: a LOCK
// travels initiator→responder, a PROPOSE answers it back, a COMMIT goes
// forward again, and a NACK's direction depends on which request it
// answers (Re) — a busy responder refusing a LOCK versus an initiator
// refusing a stale proposal.
func (m Message) Initiator() int {
	switch m.Kind {
	case MsgLock, MsgCommit:
		return m.From
	case MsgPropose:
		return m.To
	case MsgNack:
		if m.Re == MsgLock {
			return m.To
		}
		return m.From
	}
	return -1
}

// msgEdge extracts the record's edge field: only LOCK and PROPOSE carry
// the exchange's edge on the wire (edge 0 is a valid id, so the absent
// edge must be explicit).
func msgEdge(m Message) int32 {
	if m.Kind == MsgLock || m.Kind == MsgPropose {
		return int32(m.Edge)
	}
	return flight.NoNode
}

// msgRecord builds the common message-event record as observed by node:
// Node is the observer, Peer the other endpoint.
func msgRecord(kind flight.EventKind, m Message, node int, nowNs int64) flight.Record {
	peer := m.To
	if node == m.To {
		peer = m.From
	}
	return flight.Record{
		TimeNs: nowNs, Seq: m.Seq, X: m.X,
		Init: int32(m.Initiator()), Node: int32(node), Peer: int32(peer),
		Edge: msgEdge(m), Kind: kind, Msg: uint8(m.Kind), Re: uint8(m.Re),
	}
}

// recordNetDrop records a message lost in the network, attributed to ring
// `node` with the given reason. Nil-safe; the transports call it on their
// drop paths with wall-clock time.
func recordNetDrop(rec *flight.Recorder, m Message, node int, reason uint8) {
	if rec == nil {
		return
	}
	FlightEmitter{Rec: rec}.NetDrop(m, node, reason, time.Now().UnixNano())
}

// instrumentTransportFlight hands the recorder to the transport stack's
// drop sites (Bernoulli loss and mailbox congestion), walking decorator
// layers like InstrumentTransport. External transports simply record no
// drop events.
func instrumentTransportFlight(rec *flight.Recorder, tr Transport) {
	for tr != nil {
		switch t := tr.(type) {
		case *DropTransport:
			t.rec.Store(rec)
			tr = t.inner
		case *DelayTransport:
			tr = t.inner // delays are not drops; nothing to record
		case *ChanTransport:
			t.rec.Store(rec)
			return
		case *TCPTransport:
			t.rec.Store(rec)
			return
		default:
			return
		}
	}
}

// FlightPre snapshots the protocol state a step may consume, captured
// with FlightPreOf before the machine runs: a StepOut alone does not
// identify which exchange an abort or a rollback resolved (the Await/Pend
// it cleared is already gone).
type FlightPre struct {
	hadAwait  bool
	awaitSeq  uint64
	awaitPeer int
	hadPend   bool
	pendMsg   Message
}

// FlightPreOf captures st's pre-step snapshot. Call before the machine
// method, pass to the matching FlightEmitter method after.
func FlightPreOf(st *NodeState) FlightPre {
	var p FlightPre
	if st.Await != nil {
		p.hadAwait, p.awaitSeq, p.awaitPeer = true, st.Await.Seq, st.Await.Peer
	}
	if st.Pend != nil {
		p.hadPend, p.pendMsg = true, st.Pend.Msg
	}
	return p
}

// FlightEmitter translates protocol steps into flight records, one method
// per Machine entry point plus the network events. Both drivers use it;
// the records read recv → state change → send in emission order, so call
// the step method before recording the step's sends.
type FlightEmitter struct {
	Rec *flight.Recorder
}

// Deliver records an incoming message and the state changes it caused.
func (fe FlightEmitter) Deliver(node int, m Message, out StepOut, pre FlightPre, nowNs int64) {
	id := int32(node)
	fe.Rec.Record(msgRecord(flight.EvRecv, m, node, nowNs))
	if out.PendCreated {
		d := 0.0
		for _, sm := range out.Send {
			if sm.Kind == MsgPropose {
				d = sm.X
			}
		}
		fe.Rec.Record(flight.Record{TimeNs: nowNs, Seq: m.Seq, X: d,
			Init: int32(m.From), Node: id, Peer: int32(m.From), Edge: int32(m.Edge), Kind: flight.EvPendHold})
	}
	if out.Applied {
		fe.Rec.Record(flight.Record{TimeNs: nowNs, Seq: m.Seq, X: m.X,
			Init: id, Node: id, Peer: int32(m.From), Edge: msgEdge(m), Kind: flight.EvApply})
	}
	if out.Committed {
		fe.Rec.Record(flight.Record{TimeNs: nowNs, Seq: pre.pendMsg.Seq, X: pre.pendMsg.X,
			Init: int32(pre.pendMsg.To), Node: id, Peer: int32(pre.pendMsg.To), Edge: int32(pre.pendMsg.Edge), Kind: flight.EvCommit})
	}
	if out.Aborted {
		fe.Rec.Record(flight.Record{TimeNs: nowNs, Seq: m.Seq,
			Init: id, Node: id, Peer: int32(m.From), Edge: flight.NoNode, Kind: flight.EvAbort, Flags: flight.ReasonNack})
	}
	if out.PendDropped {
		fe.Rec.Record(flight.Record{TimeNs: nowNs, Seq: pre.pendMsg.Seq,
			Init: int32(pre.pendMsg.To), Node: id, Peer: int32(pre.pendMsg.To), Edge: int32(pre.pendMsg.Edge), Kind: flight.EvPendDrop})
	}
}

// Initiate records a new initiation (reads the LOCK out of out.Send).
func (fe FlightEmitter) Initiate(node int, out StepOut, nowNs int64) {
	if !out.Proposed || len(out.Send) == 0 {
		return
	}
	lk := out.Send[0]
	fe.Rec.Record(flight.Record{TimeNs: nowNs, Seq: lk.Seq, X: lk.X,
		Init: int32(node), Node: int32(node), Peer: int32(lk.To), Edge: int32(lk.Edge), Kind: flight.EvInitiate})
}

// Timeout records a lock-timeout fire and the abort it resolved.
func (fe FlightEmitter) Timeout(node int, out StepOut, pre FlightPre, nowNs int64) {
	if pre.hadAwait {
		fe.Rec.Record(flight.Record{TimeNs: nowNs, Seq: pre.awaitSeq,
			Init: int32(node), Node: int32(node), Peer: int32(pre.awaitPeer), Edge: flight.NoNode, Kind: flight.EvTimeout})
	}
	if out.Aborted {
		fe.Rec.Record(flight.Record{TimeNs: nowNs, Seq: pre.awaitSeq,
			Init: int32(node), Node: int32(node), Peer: int32(pre.awaitPeer), Edge: flight.NoNode, Kind: flight.EvAbort, Flags: flight.ReasonTimeout})
	}
}

// Resend records a retransmission-lease fire (the proposal's re-send is a
// separate Send record).
func (fe FlightEmitter) Resend(node int, pre FlightPre, nowNs int64) {
	if !pre.hadPend {
		return
	}
	fe.Rec.Record(flight.Record{TimeNs: nowNs, Seq: pre.pendMsg.Seq,
		Init: int32(pre.pendMsg.To), Node: int32(node), Peer: int32(pre.pendMsg.To), Edge: int32(pre.pendMsg.Edge), Kind: flight.EvResend})
}

// Crash records a fail-stop and the volatile initiation it aborted.
func (fe FlightEmitter) Crash(node int, out StepOut, pre FlightPre, nowNs int64) {
	fe.Rec.Record(flight.Record{TimeNs: nowNs,
		Init: flight.NoNode, Node: int32(node), Peer: flight.NoNode, Edge: flight.NoNode, Kind: flight.EvCrash})
	if out.Aborted {
		fe.Rec.Record(flight.Record{TimeNs: nowNs, Seq: pre.awaitSeq,
			Init: int32(node), Node: int32(node), Peer: int32(pre.awaitPeer), Edge: flight.NoNode, Kind: flight.EvAbort, Flags: flight.ReasonCrash})
	}
}

// Recover records a node coming back from a crash.
func (fe FlightEmitter) Recover(node int, nowNs int64) {
	fe.Rec.Record(flight.Record{TimeNs: nowNs,
		Init: flight.NoNode, Node: int32(node), Peer: flight.NoNode, Edge: flight.NoNode, Kind: flight.EvRecover})
}

// Send records a protocol message handed to the network by node.
func (fe FlightEmitter) Send(node int, m Message, nowNs int64) {
	fe.Rec.Record(msgRecord(flight.EvSend, m, node, nowNs))
}

// NetDrop records a message lost in the network, attributed to ring node.
func (fe FlightEmitter) NetDrop(m Message, node int, reason uint8, nowNs int64) {
	r := msgRecord(flight.EvNetDrop, m, node, nowNs)
	r.Flags = reason
	fe.Rec.Record(r)
}

// NetDup records a model-checker message duplication.
func (fe FlightEmitter) NetDup(m Message, nowNs int64) {
	r := msgRecord(flight.EvNetDup, m, m.From, nowNs)
	r.Flags = flight.ReasonSchedule
	fe.Rec.Record(r)
}

// emitStepRec is the live runtimes' dispatch into the shared emitter. Both
// the goroutine runtime and the sharded runtime route every protocol step
// through this one function, which is what makes their flight captures
// structurally identical (the lockstep-equivalence test pins this).
func emitStepRec(rec *flight.Recorder, id int, kind stepKind, m Message, out StepOut, pre FlightPre, nowNs int64) {
	fe := FlightEmitter{Rec: rec}
	switch kind {
	case stepDeliver:
		fe.Deliver(id, m, out, pre, nowNs)
	case stepInitiate:
		fe.Initiate(id, out, nowNs)
	case stepTimeout:
		fe.Timeout(id, out, pre, nowNs)
	case stepResend:
		fe.Resend(id, pre, nowNs)
	case stepCrash:
		fe.Crash(id, out, pre, nowNs)
	case stepRecover:
		fe.Recover(id, nowNs)
	}
}

func (n *node) emitStep(kind stepKind, m Message, out StepOut, pre FlightPre, nowNs int64) {
	emitStepRec(n.cl.rec, n.id, kind, m, out, pre, nowNs)
}
