package graph

// Partition support: two-way vertex partitions with cut-edge and
// conductance accounting, as used by Algorithm A and the cut detector.

import (
	"errors"
	"fmt"
	"math"
)

// Side labels which block of a two-way partition a node belongs to.
type Side uint8

const (
	// Side1 is the block the paper calls V1 (by convention the smaller one,
	// though Partition does not enforce that).
	Side1 Side = iota
	// Side2 is the block the paper calls V2.
	Side2
)

// String returns "V1" or "V2".
func (s Side) String() string {
	if s == Side1 {
		return "V1"
	}
	return "V2"
}

// Partition is a two-way vertex partition of a specific graph, with the cut
// edges precomputed. It is immutable after construction.
type Partition struct {
	g     *Graph
	side  []Side
	cut   []EdgeID // edges with endpoints on both sides, ascending
	size1 int
	vol1  int // sum of degrees on side 1
	vol2  int
}

// NewPartition builds a Partition of g from a per-node side assignment.
// Both sides must be non-empty and len(side) must equal g.NumNodes().
func NewPartition(g *Graph, side []Side) (*Partition, error) {
	if len(side) != g.NumNodes() {
		return nil, fmt.Errorf("graph: side assignment has %d entries for %d nodes", len(side), g.NumNodes())
	}
	p := &Partition{g: g, side: append([]Side(nil), side...)}
	for u, s := range side {
		switch s {
		case Side1:
			p.size1++
			p.vol1 += g.Degree(NodeID(u))
		case Side2:
			p.vol2 += g.Degree(NodeID(u))
		default:
			return nil, fmt.Errorf("graph: invalid side %d for node %d", s, u)
		}
	}
	if p.size1 == 0 || p.size1 == g.NumNodes() {
		return nil, errors.New("graph: partition must have two non-empty sides")
	}
	for id, e := range g.Edges() {
		if side[e.U] != side[e.V] {
			p.cut = append(p.cut, EdgeID(id))
		}
	}
	return p, nil
}

// PartitionByPrefix assigns nodes 0..n1-1 to Side1 and the rest to Side2 —
// the labelling convention the paper uses. It returns an error unless
// 0 < n1 < NumNodes.
func PartitionByPrefix(g *Graph, n1 int) (*Partition, error) {
	if n1 <= 0 || n1 >= g.NumNodes() {
		return nil, fmt.Errorf("graph: prefix size %d outside (0,%d)", n1, g.NumNodes())
	}
	side := make([]Side, g.NumNodes())
	for u := n1; u < g.NumNodes(); u++ {
		side[u] = Side2
	}
	return NewPartition(g, side)
}

// Graph returns the partitioned graph.
func (p *Partition) Graph() *Graph { return p.g }

// SideOf returns the side of node u.
func (p *Partition) SideOf(u NodeID) Side { return p.side[u] }

// Sides returns the full side assignment. Callers must not modify it.
func (p *Partition) Sides() []Side { return p.side }

// Size1 returns |V1|; Size2 returns |V2|.
func (p *Partition) Size1() int { return p.size1 }

// Size2 returns the number of nodes on Side2.
func (p *Partition) Size2() int { return p.g.NumNodes() - p.size1 }

// MinSide returns min(|V1|, |V2|), the quantity in Theorem 1.
func (p *Partition) MinSide() int {
	if s2 := p.Size2(); s2 < p.size1 {
		return s2
	}
	return p.size1
}

// CutEdges returns the IDs of edges crossing the partition, ascending.
// Callers must not modify the returned slice.
func (p *Partition) CutEdges() []EdgeID { return p.cut }

// CutSize returns |E12|.
func (p *Partition) CutSize() int { return len(p.cut) }

// IsCutEdge reports whether edge id crosses the partition.
func (p *Partition) IsCutEdge(id EdgeID) bool {
	e := p.g.Edge(id)
	return p.side[e.U] != p.side[e.V]
}

// Volume1 returns the sum of degrees over Side1 (Volume2 likewise); these
// are the volumes in the standard conductance definition.
func (p *Partition) Volume1() int { return p.vol1 }

// Volume2 returns the sum of degrees over Side2.
func (p *Partition) Volume2() int { return p.vol2 }

// Conductance returns |E12| / min(vol(V1), vol(V2)), the standard notion of
// cut sparsity. It returns +Inf when the smaller volume is zero (isolated
// side), which cannot happen on connected graphs.
func (p *Partition) Conductance() float64 {
	minVol := p.vol1
	if p.vol2 < minVol {
		minVol = p.vol2
	}
	if minVol == 0 {
		return math.Inf(1)
	}
	return float64(len(p.cut)) / float64(minVol)
}

// TheoremOneBound returns min(|V1|,|V2|) / |E12|, the paper's Theorem 1
// lower-bound expression (up to the hidden constant). It returns +Inf when
// the cut is empty.
func (p *Partition) TheoremOneBound() float64 {
	if len(p.cut) == 0 {
		return math.Inf(1)
	}
	return float64(p.MinSide()) / float64(len(p.cut))
}

// Subgraph extracts the induced subgraph on the requested side. The mapping
// slice translates new node IDs back to IDs in the parent graph.
func (p *Partition) Subgraph(s Side) (sub *Graph, toParent []NodeID) {
	toSub := make([]NodeID, p.g.NumNodes())
	for i := range toSub {
		toSub[i] = -1
	}
	for u := 0; u < p.g.NumNodes(); u++ {
		if p.side[u] == s {
			toSub[u] = NodeID(len(toParent))
			toParent = append(toParent, NodeID(u))
		}
	}
	b := NewBuilder(len(toParent)).SetName(fmt.Sprintf("%s[%s]", p.g.Name(), s))
	for _, e := range p.g.Edges() {
		if p.side[e.U] == s && p.side[e.V] == s {
			b.AddEdge(toSub[e.U], toSub[e.V])
		}
	}
	return b.MustBuild(), toParent
}

// String describes the partition compactly.
func (p *Partition) String() string {
	return fmt.Sprintf("partition(|V1|=%d, |V2|=%d, |E12|=%d, phi=%.4g)",
		p.size1, p.Size2(), len(p.cut), p.Conductance())
}

// sidesInternallyConnected reports whether each side's induced subgraph is
// connected — the paper's standing assumption about G1 and G2.
func sidesInternallyConnected(g *Graph, p *Partition) bool {
	for _, s := range []Side{Side1, Side2} {
		sub, _ := p.Subgraph(s)
		if !IsConnected(sub) {
			return false
		}
	}
	return true
}

// SidesInternallyConnected reports whether both induced side subgraphs are
// connected (the paper's assumption on G1, G2).
func SidesInternallyConnected(p *Partition) bool {
	return sidesInternallyConnected(p.g, p)
}
