// Command mcheck model-checks the exchange protocol of internal/dist: it
// drives the same pure state machine the live runtime runs through
// systematically explored schedules of deliveries, drops, duplications,
// reorderings, timeouts, retransmissions, crashes and recoveries, and
// asserts sum conservation, no-stale-commit, lock-state sanity and
// quiescence after every step (see internal/check).
//
// Usage:
//
//	mcheck -graph triangle -depth 12 -drop -dup -crash          # exhaustive
//	mcheck -graph path -n 4 -depth 10 -drop -crash              # exhaustive, 4 nodes
//	mcheck -graph ring -n 5 -mode walk -walks 20000 -depth 24   # seeded random walks
//	mcheck -graph dumbbell -n 6 -rule A -depth 10 -drop         # Algorithm A's rule
//	mcheck -mutation lax-watermark-dedup -trace cex.json        # catch a seeded bug
//	mcheck -replay cex.json                                     # replay a counterexample
//	mcheck -replay cex.json -flight cex.scfr                    # + flight dump & span timeline
//
// Exit status: 0 when no invariant is violated, 1 on a violation (the
// counterexample is printed, and written to -trace if set), 2 on usage or
// replay-mismatch errors. -expect-violation inverts 0/1 for CI jobs that
// assert a seeded mutation is caught.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sparsecut"
	"sparsecut/internal/check"
	"sparsecut/internal/dist"
	"sparsecut/internal/flight"
	"sparsecut/internal/graph"
)

func main() {
	var (
		graphKind = flag.String("graph", "triangle", "graph family: triangle | path | ring | clique | dumbbell")
		n         = flag.Int("n", 3, "number of nodes (3..5 recommended; dumbbell needs an even count)")
		ruleKind  = flag.String("rule", "vanilla", "exchange rule: vanilla | A (A needs -graph dumbbell)")
		epochK    = flag.Int64("epoch", 2, "swap period K in ticks of ec (rule A)")
		mode      = flag.String("mode", "exhaustive", "exploration mode: exhaustive | walk")
		depth     = flag.Int("depth", 12, "maximum schedule length")
		states    = flag.Int64("states", 0, "state budget for exhaustive mode (0 = default)")
		inits     = flag.Int("inits", 2, "initiation budget per schedule")
		drop      = flag.Bool("drop", false, "enable message-drop actions")
		dup       = flag.Bool("dup", false, "enable reply-duplication actions")
		crash     = flag.Bool("crash", false, "enable crash/recover actions")
		walks     = flag.Int("walks", 10000, "number of random walks (walk mode)")
		seed      = flag.Uint64("seed", 1, "random seed (walk mode)")
		mutation  = flag.String("mutation", "none", "seed an intentional protocol bug (checker self-test)")
		traceOut  = flag.String("trace", "", "write the counterexample trace JSON to this file")
		flightOut = flag.String("flight", "", "replay the counterexample through the flight recorder, write the dump here (render with tracez), and print its span timeline")
		replayIn  = flag.String("replay", "", "replay a counterexample trace JSON instead of exploring")
		expectBug = flag.Bool("expect-violation", false, "exit 0 iff a violation IS found (CI mutation gates)")
	)
	flag.Parse()

	if *replayIn != "" {
		os.Exit(replay(*replayIn, *flightOut))
	}

	spec, err := buildSpec(*graphKind, *n, *ruleKind, *epochK)
	if err != nil {
		fatal(err)
	}
	mu, ok := dist.ParseMutation(*mutation)
	if !ok {
		fatal(fmt.Errorf("unknown mutation %q", *mutation))
	}
	opt := check.Options{
		MaxDepth:       *depth,
		MaxStates:      *states,
		MaxInitiations: *inits,
		Drops:          *drop,
		Dups:           *dup,
		Crashes:        *crash,
		Mutation:       mu,
	}

	start := time.Now()
	var res *check.Result
	switch *mode {
	case "exhaustive":
		res, err = check.Exhaustive(spec, opt)
	case "walk":
		res, err = check.RandomWalk(spec, opt, *seed, *walks)
	default:
		err = fmt.Errorf("unknown mode %q (want exhaustive or walk)", *mode)
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if *mode == "walk" {
		fmt.Printf("mcheck: %d walks, %d steps taken, deepest %d, in %v\n",
			res.Walks, res.Transitions, res.DeepestDepth, elapsed.Round(time.Millisecond))
	} else {
		fmt.Printf("mcheck: %d states explored, %d transitions (%d deduped), deepest %d, in %v\n",
			res.StatesExplored, res.Transitions, res.Deduped, res.DeepestDepth, elapsed.Round(time.Millisecond))
		if res.Truncated {
			fmt.Println("mcheck: WARNING: state budget exhausted; exploration is incomplete")
		}
	}

	if res.Counterexample == nil {
		fmt.Println("mcheck: no invariant violations")
		if *expectBug {
			fmt.Println("mcheck: FAIL: a violation was expected (-expect-violation)")
			os.Exit(1)
		}
		return
	}

	tr := res.Counterexample
	fmt.Printf("mcheck: VIOLATION at step %d: %s: %s\n", tr.Violation.Step, tr.Violation.Invariant, tr.Violation.Detail)
	for i, a := range tr.Actions {
		line := a.Op
		if a.Info != "" {
			line += "  (" + a.Info + ")"
		}
		fmt.Printf("  %2d. %s\n", i+1, line)
	}
	if *traceOut != "" {
		if err := tr.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("mcheck: counterexample written to %s\n", *traceOut)
	}
	// Confirm the counterexample replays deterministically before trusting it.
	v, err := check.Replay(tr)
	if err != nil || !tr.Violation.Same(v) {
		fmt.Printf("mcheck: FAIL: counterexample does not replay (got %+v, err %v)\n", v, err)
		os.Exit(2)
	}
	if *flightOut != "" {
		if err := flightDump(tr, *flightOut); err != nil {
			fatal(err)
		}
	}
	if *expectBug {
		fmt.Println("mcheck: violation found and replayed, as expected")
		return
	}
	os.Exit(1)
}

// replay re-executes a trace file and compares against its recorded
// violation. Exit 0 on faithful reproduction (including a recorded clean
// run), 1 when the violation reproduces differently, 2 on broken traces.
// With flightOut set the replay additionally captures a flight dump.
func replay(path, flightOut string) int {
	tr, err := check.ReadTraceFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcheck:", err)
		return 2
	}
	v, err := check.Replay(tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcheck: replay:", err)
		return 2
	}
	if flightOut != "" {
		if err := flightDump(tr, flightOut); err != nil {
			fmt.Fprintln(os.Stderr, "mcheck: flight:", err)
			return 2
		}
	}
	switch {
	case tr.Violation.Same(v):
		if v == nil {
			fmt.Println("mcheck: trace replays cleanly (no violation recorded, none produced)")
		} else {
			fmt.Printf("mcheck: violation reproduced at step %d: %s: %s\n", v.Step, v.Invariant, v.Detail)
		}
		return 0
	default:
		rec, _ := json.Marshal(tr.Violation)
		got, _ := json.Marshal(v)
		fmt.Printf("mcheck: REPLAY MISMATCH\n  recorded: %s\n  replayed: %s\n", rec, got)
		return 1
	}
}

// flightDump replays tr through the flight recorder (virtual ticks,
// byte-deterministic — see check.ReplayFlight), writes the dump to path,
// and prints the schedule as a per-exchange span timeline.
func flightDump(tr *check.Trace, path string) error {
	rec := flight.New(tr.Graph.Nodes, 0)
	if _, err := check.ReplayFlight(tr, rec); err != nil {
		return err
	}
	d := rec.Snapshot()
	if err := d.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("mcheck: flight dump (%d events) written to %s; render with: go run ./cmd/tracez -view timeline %s\n",
		len(d.Events), path, path)
	fmt.Println("mcheck: schedule as span timeline (times are virtual ticks):")
	flight.RenderTimeline(os.Stdout, flight.Stitch(d), flight.NewFilter())
	return nil
}

// buildSpec assembles the checked system. Initial values follow a fixed
// distinct-value pattern so provenance violations are visible (exchanges
// between equal values have delta 0).
func buildSpec(kind string, n int, ruleKind string, epochK int64) (check.Spec, error) {
	var g *graph.Graph
	var part *graph.Partition
	switch kind {
	case "triangle":
		g, n = graph.Complete(3), 3
	case "clique":
		g = graph.Complete(n)
	case "path":
		g = graph.Path(n)
	case "ring":
		g = graph.Cycle(n)
	case "dumbbell":
		var err error
		g, part, err = graph.SymmetricDumbbell(n/2, 1)
		if err != nil {
			return check.Spec{}, err
		}
		n = g.NumNodes()
	default:
		return check.Spec{}, fmt.Errorf("unknown graph %q", kind)
	}
	if g.NumNodes() < 2 {
		return check.Spec{}, fmt.Errorf("graph %q with n=%d has fewer than 2 nodes", kind, n)
	}
	x0 := make([]float64, g.NumNodes())
	for i := range x0 {
		x0[i] = float64((i*3)%7) - 2 // distinct-ish, sum-varied, exact in binary
	}
	var rule check.RuleSpec
	switch ruleKind {
	case "vanilla":
		rule = check.Vanilla()
	case "A":
		if part == nil {
			return check.Spec{}, fmt.Errorf("rule A needs -graph dumbbell (a known partition)")
		}
		sides := make([]int, g.NumNodes())
		for i := range sides {
			if part.SideOf(graph.NodeID(i)) == graph.Side2 {
				sides[i] = 1
			}
		}
		w := sparsecut.ExactSwapWeight(part)
		rule = check.SparseCut(sides, int(part.CutEdges()[0]), epochK, w)
	default:
		return check.Spec{}, fmt.Errorf("unknown rule %q", ruleKind)
	}
	return check.Spec{Graph: g, X0: x0, Rule: rule}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcheck:", err)
	os.Exit(2)
}
