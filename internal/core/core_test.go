package core

import (
	"math"
	"testing"

	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/sim"
	"sparsecut/internal/spectral"
)

func dumbbell(t *testing.T, n1, n2, cutEdges int) (*graph.Graph, *graph.Partition) {
	t.Helper()
	g, p, err := graph.Dumbbell(n1, n2, cutEdges)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

func TestWeightRuleStrings(t *testing.T) {
	for _, r := range []WeightRule{WeightExact, WeightPaper, WeightCustom, WeightRule(9)} {
		if r.String() == "" {
			t.Errorf("empty name for rule %d", int(r))
		}
	}
}

func TestExactWeightValues(t *testing.T) {
	_, p := dumbbell(t, 4, 4, 1)
	if got := ExactWeight(p); got != 2 {
		t.Errorf("ExactWeight(4,4) = %v, want 2", got)
	}
	if got := PaperWeight(p); got != 4 {
		t.Errorf("PaperWeight(4,4) = %v, want 4", got)
	}
	_, p2 := dumbbell(t, 2, 8, 1)
	if got := ExactWeight(p2); got != 1.6 {
		t.Errorf("ExactWeight(2,8) = %v, want 1.6", got)
	}
	if got := PaperWeight(p2); got != 2 {
		t.Errorf("PaperWeight(2,8) = %v, want 2", got)
	}
}

func TestNewValidation(t *testing.T) {
	g, p := dumbbell(t, 4, 4, 1)
	x0 := gossip.CutIndicator(p)

	if _, err := New(g, x0[:3], WithPartition(p)); err == nil {
		t.Error("length mismatch not rejected")
	}
	other, _ := dumbbell(t, 3, 3, 1)
	otherPart, err := graph.PartitionByPrefix(other, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, x0, WithPartition(otherPart)); err == nil {
		t.Error("foreign partition not rejected")
	}
	if _, err := New(g, x0, WithPartition(p), WithCutEdge(0)); err == nil {
		t.Error("non-cut designated edge not rejected")
	}
	if _, err := New(g, x0, WithPartition(p), WithCutEdge(9999)); err == nil {
		t.Error("out-of-range designated edge not rejected")
	}
	if _, err := New(g, x0, WithPartition(p), WithWeight(-1)); err == nil {
		t.Error("negative custom weight not rejected")
	}
	if _, err := New(g, x0, WithPartition(p), WithEpochTicks(-5)); err == nil {
		t.Error("negative epoch not rejected")
	}
	if _, err := New(g, x0, WithPartition(p), WithEpochConstant(-1)); err == nil {
		t.Error("negative epoch constant not rejected")
	}
	if _, err := New(g, x0, WithPartition(p), WithTvan(math.Inf(1), 0)); err == nil {
		t.Error("infinite Tvan not rejected")
	}
}

func TestNewDefaults(t *testing.T) {
	g, p := dumbbell(t, 8, 8, 1)
	a, err := New(g, gossip.CutIndicator(p), WithPartition(p))
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight() != ExactWeight(p) {
		t.Errorf("default weight %v, want exact %v", a.Weight(), ExactWeight(p))
	}
	if a.EpochTicks() < 1 {
		t.Errorf("epoch %d < 1", a.EpochTicks())
	}
	if a.CutEdge() != p.CutEdges()[0] {
		t.Error("default ec is not the designated cut edge")
	}
	tv1, tv2 := a.TvanEstimates()
	if tv1 <= 0 || tv2 <= 0 {
		t.Errorf("Tvan estimates (%v, %v) should be positive", tv1, tv2)
	}
	if a.Name() == "" {
		t.Error("empty name")
	}
	if a.EpochDuration() != float64(a.EpochTicks()) {
		t.Error("epoch duration should equal K for a single rate-1 ec")
	}
}

func TestAutoDetectPartition(t *testing.T) {
	g, planted := dumbbell(t, 8, 8, 1)
	a, err := New(g, gossip.CutIndicator(planted))
	if err != nil {
		t.Fatal(err)
	}
	if a.Partition().CutSize() != 1 {
		t.Errorf("auto-detected cut size %d, want 1", a.Partition().CutSize())
	}
}

func TestSwapAnnihilatesSideMeansExactWeight(t *testing.T) {
	// With both sides perfectly mixed, a single exact-weight swap must land
	// both side means on the global mean.
	g, p := dumbbell(t, 6, 10, 1)
	x0 := make([]float64, 16)
	for u := 0; u < 6; u++ {
		x0[u] = 3 // µ1 = 3
	}
	for u := 6; u < 16; u++ {
		x0[u] = -1 // µ2 = -1; global mean = (18-10)/16 = 0.5
	}
	a, err := New(g, x0, WithPartition(p), WithEpochTicks(1))
	if err != nil {
		t.Fatal(err)
	}
	ec := a.CutEdge()
	a.HandleTick(ec, 1.0) // first tick of ec fires the swap (1 % 1 == 0)
	mu1, mu2 := a.SideMeans()
	if math.Abs(mu1-0.5) > 1e-12 || math.Abs(mu2-0.5) > 1e-12 {
		t.Errorf("side means after exact swap = (%v, %v), want (0.5, 0.5)", mu1, mu2)
	}
	if a.Swaps() != 1 {
		t.Errorf("swaps = %d", a.Swaps())
	}
}

func TestSwapPaperWeightExchangesMeansOnEqualSides(t *testing.T) {
	// The documented failure mode: literal w = n1 on n1 = n2 swaps the two
	// side means instead of annihilating them.
	g, p := dumbbell(t, 6, 6, 1)
	x0 := make([]float64, 12)
	for u := 0; u < 6; u++ {
		x0[u] = 1
	}
	for u := 6; u < 12; u++ {
		x0[u] = -1
	}
	a, err := New(g, x0, WithPartition(p), WithEpochTicks(1), WithWeightRule(WeightPaper))
	if err != nil {
		t.Fatal(err)
	}
	a.HandleTick(a.CutEdge(), 1.0)
	mu1, mu2 := a.SideMeans()
	if math.Abs(mu1-(-1)) > 1e-12 || math.Abs(mu2-1) > 1e-12 {
		t.Errorf("paper-weight swap on equal sides gave (%v, %v), want (-1, 1)", mu1, mu2)
	}
}

func TestSwapPreservesSum(t *testing.T) {
	g, p := dumbbell(t, 5, 9, 2)
	x0 := gossip.CutIndicator(p)
	for _, rule := range []WeightRule{WeightExact, WeightPaper} {
		a, err := New(g, x0, WithPartition(p), WithEpochTicks(1), WithWeightRule(rule))
		if err != nil {
			t.Fatal(err)
		}
		sum0 := a.Mean() * float64(g.NumNodes())
		for k := 0; k < 10; k++ {
			a.HandleTick(a.CutEdge(), float64(k))
		}
		if math.Abs(a.Mean()*float64(g.NumNodes())-sum0) > 1e-9 {
			t.Errorf("rule %v: sum drifted", rule)
		}
	}
}

func TestNonDesignatedCutEdgeIsNoOp(t *testing.T) {
	g, p := dumbbell(t, 4, 4, 2)
	x0 := gossip.CutIndicator(p)
	a, err := New(g, x0, WithPartition(p), WithEpochTicks(1))
	if err != nil {
		t.Fatal(err)
	}
	var other graph.EdgeID = -1
	for _, id := range p.CutEdges() {
		if id != a.CutEdge() {
			other = id
		}
	}
	if other < 0 {
		t.Fatal("no non-designated cut edge")
	}
	before := a.Values()
	a.HandleTick(other, 0.5)
	after := a.Values()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("non-designated cut edge changed node %d", i)
		}
	}
}

func TestInternalEdgeAverages(t *testing.T) {
	g, p := dumbbell(t, 3, 3, 1)
	x0 := []float64{6, 0, 0, 1, 1, 1}
	a, err := New(g, x0, WithPartition(p))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.FindEdge(0, 1)
	if !ok {
		t.Fatal("edge 0-1 missing")
	}
	a.HandleTick(e, 0.1)
	vals := a.Values()
	if vals[0] != 3 || vals[1] != 3 {
		t.Errorf("internal tick gave %v", vals[:2])
	}
}

func TestSwapOnlyEveryKthTick(t *testing.T) {
	g, p := dumbbell(t, 4, 4, 1)
	a, err := New(g, gossip.CutIndicator(p), WithPartition(p), WithEpochTicks(5))
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 14; k++ {
		a.HandleTick(a.CutEdge(), float64(k))
	}
	if a.Swaps() != 2 { // ticks 5 and 10
		t.Errorf("swaps = %d after 14 ticks with K=5, want 2", a.Swaps())
	}
}

func TestSwapListener(t *testing.T) {
	g, p := dumbbell(t, 4, 4, 1)
	var events []SwapEvent
	a, err := New(g, gossip.CutIndicator(p), WithPartition(p), WithEpochTicks(2),
		WithSwapListener(func(ev SwapEvent) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 6; k++ {
		a.HandleTick(a.CutEdge(), float64(k))
	}
	if len(events) != 3 {
		t.Fatalf("listener saw %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Index != int64(i+1) {
			t.Errorf("event %d has index %d", i, ev.Index)
		}
		if ev.VarBefore < 0 || ev.VarAfter < 0 {
			t.Error("negative variance in event")
		}
	}
	if events[0].Time != 2 || events[1].Time != 4 {
		t.Errorf("event times %v, %v; want 2, 4", events[0].Time, events[1].Time)
	}
}

func TestConvergesOnDumbbellFast(t *testing.T) {
	// End-to-end: Algorithm A on a symmetric dumbbell with the worst-case
	// initial vector converges to variance ~0 and preserves the mean.
	g, p := dumbbell(t, 16, 16, 1)
	x0 := gossip.CutIndicator(p)
	a, err := New(g, x0, WithPartition(p))
	if err != nil {
		t.Fatal(err)
	}
	var0 := a.Variance()
	mean0 := a.Mean()
	eng, err := sim.NewEngine(g, a, sim.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	// Generous horizon: a handful of epochs.
	eng.Run(sim.Until(20 * a.EpochDuration()))
	if a.Variance() > 1e-6*var0 {
		t.Errorf("variance ratio %v after 20 epochs", a.Variance()/var0)
	}
	if math.Abs(a.Mean()-mean0) > 1e-9 {
		t.Errorf("mean drifted %v -> %v", mean0, a.Mean())
	}
	if a.Swaps() == 0 {
		t.Error("no swaps fired")
	}
}

func TestAllCutEdgesMode(t *testing.T) {
	g, p := dumbbell(t, 8, 8, 4)
	x0 := gossip.CutIndicator(p)
	a, err := New(g, x0, WithPartition(p), WithEpochTicks(4), WithAllCutEdges())
	if err != nil {
		t.Fatal(err)
	}
	if a.CutEdge() != -1 {
		t.Error("all-cut-edges mode should report ec = -1")
	}
	if a.EpochDuration() != 1 { // K=4 over 4 cut edges
		t.Errorf("epoch duration %v, want 1", a.EpochDuration())
	}
	// Ticking each of the 4 cut edges once gives 4 shared ticks = 1 swap.
	for _, id := range p.CutEdges() {
		a.HandleTick(id, 1)
	}
	if a.Swaps() != 1 {
		t.Errorf("swaps = %d, want 1", a.Swaps())
	}
}

func TestSideTvanBounds(t *testing.T) {
	_, p := dumbbell(t, 8, 16, 1)
	tv1, tv2, err := SideTvanBounds(p, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// K_8 bound 6/8, K_16 bound 6/16.
	if math.Abs(tv1-0.75) > 1e-6 {
		t.Errorf("tvan1 = %v, want 0.75", tv1)
	}
	if math.Abs(tv2-0.375) > 1e-6 {
		t.Errorf("tvan2 = %v, want 0.375", tv2)
	}
}

func TestSideTvanBoundsSingletonSide(t *testing.T) {
	_, p := dumbbell(t, 1, 5, 1)
	tv1, _, err := SideTvanBounds(p, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tv1 != 0 {
		t.Errorf("singleton side tvan = %v, want 0", tv1)
	}
}

func TestEpochFormulaMatchesPaper(t *testing.T) {
	g, p := dumbbell(t, 8, 8, 1)
	const c = 2.5
	a, err := New(g, gossip.CutIndicator(p), WithPartition(p), WithEpochConstant(c))
	if err != nil {
		t.Fatal(err)
	}
	tv1, tv2 := a.TvanEstimates()
	want := int64(math.Ceil(c * (tv1 + tv2) * math.Log(16)))
	if want < 1 {
		want = 1
	}
	if a.EpochTicks() != want {
		t.Errorf("K = %d, want %d", a.EpochTicks(), want)
	}
}

// The fused kernel path must produce bit-identical value trajectories to
// the legacy HandleTick path, including across non-convex swaps, and the
// swap listeners must fire at identical times and indices.
func TestAlgorithmAKernelBitIdenticalToHandleTick(t *testing.T) {
	g, part, err := graph.Dumbbell(16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	x0 := gossip.CutIndicator(part)
	type swapRec struct {
		at        float64
		index     int64
		varBefore float64
		varAfter  float64
	}
	build := func(rec *[]swapRec) *SparseCutAveraging {
		a, err := New(g, x0, WithPartition(part), WithEpochTicks(3),
			WithSwapListener(func(ev SwapEvent) {
				*rec = append(*rec, swapRec{at: ev.Time, index: ev.Index, varBefore: ev.VarBefore, varAfter: ev.VarAfter})
			}))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	var swapsL, swapsF []swapRec
	legacy := build(&swapsL)
	fused := build(&swapsF)
	engL, err := sim.NewEngine(g, sim.HandlerFunc(legacy.HandleTick), sim.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	engF, err := sim.NewEngine(g, fused, sim.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	const events = 30000
	tL, _ := engL.Run(sim.MaxEvents(events))
	tF, _ := engF.RunEvents(events)
	if tL != tF {
		t.Fatalf("end time %v legacy vs %v fused", tL, tF)
	}
	if legacy.Swaps() == 0 {
		t.Fatal("no swaps fired; test covers nothing")
	}
	if legacy.Swaps() != fused.Swaps() {
		t.Fatalf("%d swaps legacy vs %d fused", legacy.Swaps(), fused.Swaps())
	}
	if len(swapsL) != len(swapsF) {
		t.Fatalf("%d listener events legacy vs %d fused", len(swapsL), len(swapsF))
	}
	for i := range swapsL {
		if swapsL[i] != swapsF[i] {
			t.Fatalf("swap %d: %+v legacy vs %+v fused", i, swapsL[i], swapsF[i])
		}
	}
	vL, vF := legacy.Values(), fused.Values()
	for i := range vL {
		if math.Float64bits(vL[i]) != math.Float64bits(vF[i]) {
			t.Fatalf("value %d = %v legacy vs %v fused (not bit-identical)", i, vL[i], vF[i])
		}
	}
}

// Same check in all-cut-edges mode (ec = -1), where every cut edge drives
// the shared epoch counter.
func TestAlgorithmAKernelBitIdenticalAllCutEdges(t *testing.T) {
	g, part, err := graph.Dumbbell(12, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	x0 := gossip.CutIndicator(part)
	build := func() *SparseCutAveraging {
		a, err := New(g, x0, WithPartition(part), WithEpochTicks(5), WithAllCutEdges())
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	legacy, fused := build(), build()
	engL, err := sim.NewEngine(g, sim.HandlerFunc(legacy.HandleTick), sim.WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	engF, err := sim.NewEngine(g, fused, sim.WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	engL.Run(sim.MaxEvents(20000))
	engF.RunEvents(20000)
	if legacy.Swaps() == 0 || legacy.Swaps() != fused.Swaps() {
		t.Fatalf("swaps: %d legacy vs %d fused", legacy.Swaps(), fused.Swaps())
	}
	vL, vF := legacy.Values(), fused.Values()
	for i := range vL {
		if math.Float64bits(vL[i]) != math.Float64bits(vF[i]) {
			t.Fatalf("value %d = %v legacy vs %v fused", i, vL[i], vF[i])
		}
	}
}
